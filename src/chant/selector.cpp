// selector.cpp — chant::Selector and the Runtime-side plumbing that
// arms/disarms nx completion waiters behind chant handles.
//
// Lock order (DESIGN.md §11):
//   * nx completion path: ep.mu_ held while a fire is *queued*; the
//     callback itself (waiter_fire) runs from flush_waiter_fires with no
//     endpoint lock, takes sel.mu_, releases it, THEN calls poll_wake
//     (which takes the scheduler's wait_mu_). So the only chains are
//     ep.mu_ alone, and sel.mu_ → (nothing), and wait_mu_ alone.
//   * scheduler scan path: wait_mu_ → ep.mu_ (predicates call msgtest /
//     poll_progress). This is why no callback may run under either lock.
// Selector state transitions other than mark-ready are owner-fiber-only;
// mu_ exists solely to order the mark-ready of a foreign completion
// thread against the owner's harvest.
#include <algorithm>
#include <stdexcept>

#include "chant/selector.hpp"

#include "chant/hb.hpp"
#include "chant/runtime.hpp"
#include "chant/validate.hpp"

namespace chant {

namespace {
constexpr std::uint32_t kIdxMask = 0xFFFFu;
constexpr std::uint32_t kGenMask = 0x7FFFu;
}  // namespace

// ------------------------------------------------ Runtime sel_* plumbing

Runtime::ChantReq* Runtime::sel_checked_req(int handle) {
  const auto idx = static_cast<std::uint32_t>(handle) & kIdxMask;
  const auto gen = static_cast<std::uint32_t>(handle) >> 16;
  if (handle < 0 || idx >= reqs_.size()) return nullptr;
  ChantReq& r = reqs_[idx];
  if ((r.gen & kGenMask) != gen || !r.active) return nullptr;
  return &r;
}

Runtime::AsyncCall* Runtime::sel_checked_call(int handle) {
  const auto idx = static_cast<std::uint32_t>(handle) & kIdxMask;
  const auto gen = static_cast<std::uint32_t>(handle) >> 16;
  if (handle < 0 || idx >= calls_.size()) return nullptr;
  AsyncCall& c = calls_[idx];
  if ((c.gen & kGenMask) != gen || !c.active) return nullptr;
  return &c;
}

Runtime::SelAttach Runtime::sel_attach_recv(int handle,
                                            nx::Endpoint::WaiterFn fn,
                                            void* sel, std::uint64_t token) {
  ChantReq* r = sel_checked_req(handle);
  if (r == nullptr) return SelAttach::Invalid;
  // One selector registration per handle; re-arming the same
  // registration (mailbox rotation, post-fire re-check) is idempotent.
  if (r->sel != nullptr && (r->sel != sel || r->sel_token != token)) {
    return SelAttach::Invalid;
  }
  r->sel = sel;
  r->sel_token = token;
  if (r->wait.done) return SelAttach::Ready;  // harvested earlier
  if (!ep_.set_recv_waiter(r->wait.nxh, fn, sel, token)) {
    // Completed before the waiter armed: readiness is observed directly,
    // no fire will come. wait_test harvests on the caller's next check.
    return SelAttach::Ready;
  }
  return SelAttach::Armed;
}

void Runtime::sel_detach_recv(int handle, void* sel) {
  ChantReq* r = sel_checked_req(handle);
  if (r == nullptr || r->sel != sel) return;
  if (!r->wait.done) ep_.clear_recv_waiter(r->wait.nxh);
  r->sel = nullptr;
  r->sel_token = 0;
}

bool Runtime::sel_recv_ready(int handle) {
  ChantReq* r = sel_checked_req(handle);
  if (r == nullptr) return false;
  // Non-consuming at the chant layer: wait_test harvests the nx slot
  // into r.wait.hdr and latches done, but the ChantReq stays active for
  // the user's own msgtest/msgwait to retire.
  return wait_test(&r->wait);
}

Runtime::SelAttach Runtime::sel_attach_call(int handle,
                                            nx::Endpoint::WaiterFn fn,
                                            void* sel, std::uint64_t token) {
  AsyncCall* c = sel_checked_call(handle);
  if (c == nullptr) return SelAttach::Invalid;
  if (c->sel != nullptr && (c->sel != sel || c->sel_token != token)) {
    return SelAttach::Invalid;
  }
  c->sel = sel;
  c->sel_token = token;
  return sel_call_progress(handle, fn, sel, token);
}

Runtime::SelAttach Runtime::sel_call_progress(int handle,
                                              nx::Endpoint::WaiterFn fn,
                                              void* sel,
                                              std::uint64_t token) {
  AsyncCall* c = sel_checked_call(handle);
  if (c == nullptr || c->sel != sel) return SelAttach::Invalid;
  if (wait_test(&c->wait)) {
    // Inline reply landed; reply_parts_done lazily posts the announced
    // tail receive — a call's readiness can move through two nx
    // requests, so the waiter follows the pending part.
    if (reply_parts_done(*c)) return SelAttach::Ready;
    if (!ep_.set_recv_waiter(c->tail_wait.nxh, fn, sel, token)) {
      return SelAttach::Ready;  // tail landed while re-arming
    }
    return SelAttach::Armed;
  }
  if (!ep_.set_recv_waiter(c->wait.nxh, fn, sel, token)) {
    // Completed in the race window; readiness visible on the next test.
    return SelAttach::Ready;
  }
  return SelAttach::Armed;
}

void Runtime::sel_detach_call(int handle, void* sel) {
  AsyncCall* c = sel_checked_call(handle);
  if (c == nullptr || c->sel != sel) return;
  if (!c->wait.done) ep_.clear_recv_waiter(c->wait.nxh);
  if (c->tail_posted && !c->tail_wait.done) {
    ep_.clear_recv_waiter(c->tail_wait.nxh);
  }
  c->sel = nullptr;
  c->sel_token = 0;
}

void Runtime::sel_notify_req_retired(ChantReq& r) {
  if (r.sel == nullptr) return;
  // Order matters: clear the nx waiter while the handle is still live so
  // a queued-but-uninvoked fire is purged; only then drop the selector
  // registration (its generation bump filters any in-flight fire).
  if (!r.wait.done) ep_.clear_recv_waiter(r.wait.nxh);
  Selector::notify_handle_retired(r.sel, r.sel_token);
  r.sel = nullptr;
  r.sel_token = 0;
}

void Runtime::sel_notify_call_retired(AsyncCall& c) {
  if (c.sel == nullptr) return;
  if (!c.wait.done) ep_.clear_recv_waiter(c.wait.nxh);
  if (c.tail_posted && !c.tail_wait.done) {
    ep_.clear_recv_waiter(c.tail_wait.nxh);
  }
  Selector::notify_handle_retired(c.sel, c.sel_token);
  c.sel = nullptr;
  c.sel_token = 0;
}

bool Runtime::block_on_predicate(const lwt::PollRequest& req,
                                 std::uint64_t deadline_ns) {
  // Like block_until, minus the wq_waits_/testany registration: the
  // predicate is self-contained (not an nx handle the group poll could
  // test), so it parks as an ordinary per-entry WQ wait even when the
  // msgtestany hook is installed.
  const hb::WaitScope hb_scope(req.ctx, "chant::Selector::wait",
                               deadline_ns != lwt::kNoDeadline);
  switch (cfg_.policy) {
    case PollPolicy::ThreadPolls:
      return sched_.poll_block_tp(req, deadline_ns);
    case PollPolicy::SchedulerPollsPS:
      return sched_.poll_block_ps(req, deadline_ns);
    case PollPolicy::SchedulerPollsWQ:
      return sched_.poll_block_wq(req, deadline_ns);
  }
  return false;  // unreachable
}

// ----------------------------------------------------------- Selector

Selector::Selector(Runtime& rt) : rt_(&rt) {}

Selector::~Selector() {
  // Deregister everything (clears nx waiters and purges queued fires),
  // then wait out any fire a concurrent flush already extracted: after
  // quiesce, no thread can touch this object again.
  mu_.lock();
  std::vector<std::uint64_t> toks;
  for (std::uint32_t slot = 0; slot < entries_.size(); ++slot) {
    if (entries_[slot].kind != Kind::None) {
      toks.push_back(make_token(slot, entries_[slot].gen));
    }
  }
  mu_.unlock();
  for (std::uint64_t t : toks) (void)remove(t);
  rt_->ep_.waiter_quiesce();
}

std::uint64_t Selector::new_entry(Entry&& e) {
  mu_.lock();
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    const std::uint32_t gen = entries_[slot].gen + 1;  // even→odd: live
    entries_[slot] = std::move(e);
    entries_[slot].gen = gen;
  } else {
    slot = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(std::move(e));
  }
  ++live_;
  if (entries_[slot].kind == Kind::Timer ||
      entries_[slot].kind == Kind::Mailbox) {
    ++sweep_sources_;
  }
  const std::uint64_t token = make_token(slot, entries_[slot].gen);
  mu_.unlock();
  return token;
}

Selector::Entry* Selector::entry_for(std::uint64_t token) {
  const auto slot = static_cast<std::uint32_t>(token & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(token >> 32);
  if (slot >= entries_.size()) return nullptr;
  Entry& e = entries_[slot];
  if (e.kind == Kind::None || e.gen != gen) return nullptr;
  return &e;
}

void Selector::mark_ready_locked(std::uint32_t slot) {
  Entry& e = entries_[slot];
  if (e.ready) return;
  e.ready = true;
  ready_list_.push_back(make_token(slot, e.gen));
  ready_pending_.store(static_cast<std::uint32_t>(ready_list_.size()),
                       std::memory_order_release);
}

void Selector::retire_locked(std::uint32_t slot) {
  Entry& e = entries_[slot];
  if (e.kind == Kind::Timer || e.kind == Kind::Mailbox) --sweep_sources_;
  e.kind = Kind::None;
  ++e.gen;  // odd→even: dead; filters queued/in-flight fires
  e.armed = false;
  e.ready = false;
  e.handle = -1;
  e.mb = nullptr;
  e.mb_handle = nullptr;
  free_slots_.push_back(slot);
  --live_;
}

std::uint64_t Selector::add_recv(int handle) {
  Entry e;
  e.kind = Kind::Recv;
  e.handle = handle;
  const std::uint64_t token = new_entry(std::move(e));
  const Runtime::SelAttach st =
      rt_->sel_attach_recv(handle, &Selector::waiter_fire, this, token);
  mu_.lock();
  Entry* ent = entry_for(token);
  if (st == Runtime::SelAttach::Invalid) {
    if (ent != nullptr) {
      retire_locked(static_cast<std::uint32_t>(token & 0xFFFFFFFFu));
    }
    mu_.unlock();
    throw std::invalid_argument("chant::Selector::add_recv: stale handle");
  }
  if (ent != nullptr) {
    if (st == Runtime::SelAttach::Ready) {
      mark_ready_locked(static_cast<std::uint32_t>(token & 0xFFFFFFFFu));
    } else {
      ent->armed = true;
    }
  }
  mu_.unlock();
  return token;
}

std::uint64_t Selector::add_call(int handle) {
  Entry e;
  e.kind = Kind::Call;
  e.handle = handle;
  const std::uint64_t token = new_entry(std::move(e));
  const Runtime::SelAttach st =
      rt_->sel_attach_call(handle, &Selector::waiter_fire, this, token);
  mu_.lock();
  Entry* ent = entry_for(token);
  if (st == Runtime::SelAttach::Invalid) {
    if (ent != nullptr) {
      retire_locked(static_cast<std::uint32_t>(token & 0xFFFFFFFFu));
    }
    mu_.unlock();
    throw std::invalid_argument("chant::Selector::add_call: stale handle");
  }
  if (ent != nullptr) {
    if (st == Runtime::SelAttach::Ready) {
      mark_ready_locked(static_cast<std::uint32_t>(token & 0xFFFFFFFFu));
    } else {
      ent->armed = true;
    }
  }
  mu_.unlock();
  return token;
}

std::uint64_t Selector::add_timer(Deadline d) {
  Entry e;
  e.kind = Kind::Timer;
  e.deadline_ns = rt_->resolve_deadline(d);
  e.armed = true;
  return new_entry(std::move(e));  // arm_and_sweep flags expiry
}

std::uint64_t Selector::add_mailbox_raw(void* mb, int (*handle_fn)(void*)) {
  Entry e;
  e.kind = Kind::Mailbox;
  e.mb = mb;
  e.mb_handle = handle_fn;
  return new_entry(std::move(e));  // armed lazily by the next wait()
}

Status Selector::remove(std::uint64_t token) {
  mu_.lock();
  Entry* e = entry_for(token);
  if (e == nullptr) {
    mu_.unlock();
    return StatusCode::Invalid;  // unknown or auto-deregistered: no-op
  }
  const Kind kind = e->kind;
  const int handle = e->handle;
  retire_locked(static_cast<std::uint32_t>(token & 0xFFFFFFFFu));
  mu_.unlock();
  // Generation already bumped: an in-flight fire is now filtered. Clear
  // the nx waiter (purging any queued fire) and the back-pointer.
  switch (kind) {
    case Kind::Recv:
      rt_->sel_detach_recv(handle, this);
      break;
    case Kind::Call:
      rt_->sel_detach_call(handle, this);
      break;
    case Kind::Mailbox:
      if (handle >= 0) rt_->sel_detach_recv(handle, this);
      break;
    case Kind::Timer:
    case Kind::None:
      break;
  }
  return StatusCode::Ok;
}

std::size_t Selector::size() const {
  mu_.lock();
  const std::size_t n = live_;
  mu_.unlock();
  return n;
}

bool Selector::poll_test(void* ctx) {
  auto* s = static_cast<Selector*>(ctx);
  if (s->ready_pending_.load(std::memory_order_acquire) != 0) return true;
  // No marked entry yet — but in-flight (timed-net) messages only become
  // visible through a progress pass, and every fiber may be parked. The
  // probe queues fires without invoking them (we may hold wait_mu_
  // here); returning true hands the flush to the woken fiber. A wake for
  // another selector's fire is spurious but benign: it flushes, finds
  // nothing of its own, re-parks.
  return s->rt_->ep_.poll_progress();
}

void Selector::waiter_fire(void* ctx, std::uint64_t token) {
  auto* s = static_cast<Selector*>(ctx);
  s->mu_.lock();
  Entry* e = s->entry_for(token);
  bool marked = false;
  if (e != nullptr) {
    e->armed = false;  // the nx waiter is one-shot
    s->mark_ready_locked(static_cast<std::uint32_t>(token & 0xFFFFFFFFu));
    marked = true;
  }
  s->mu_.unlock();
  // Wake with no selector lock held: poll_wake takes the scheduler's
  // wait_mu_, and holding sel.mu_ across it would order sel.mu_ before
  // wait_mu_ while the owner's harvest orders them the other way.
  if (marked) (void)s->rt_->sched_.poll_wake(s);
}

void Selector::notify_handle_retired(void* sel, std::uint64_t token) {
  auto* s = static_cast<Selector*>(sel);
  s->mu_.lock();
  Entry* e = s->entry_for(token);
  if (e != nullptr) {
    if (e->kind == Kind::Mailbox) {
      // The mailbox's pending receive was harvested (try_recv) or
      // withdrawn; the registration itself survives — the next wait()
      // re-arms on a freshly posted receive.
      e->armed = false;
      e->handle = -1;
    } else {
      s->retire_locked(static_cast<std::uint32_t>(token & 0xFFFFFFFFu));
    }
  }
  s->mu_.unlock();
}

std::uint64_t Selector::arm_and_sweep() {
  const std::uint64_t now = rt_->sched_.now();
  std::uint64_t earliest = lwt::kNoDeadline;
  struct Arm {
    std::uint64_t token;
    void* mb;
    int (*fn)(void*);
  };
  std::vector<Arm> to_arm;
  mu_.lock();
  if (sweep_sources_ == 0) {  // recv/call-only: nothing to sweep, O(ready)
    mu_.unlock();
    return earliest;
  }
  for (std::uint32_t slot = 0; slot < entries_.size(); ++slot) {
    Entry& e = entries_[slot];
    if (e.kind == Kind::Timer) {
      if (e.ready) continue;
      if (e.deadline_ns <= now) {
        mark_ready_locked(slot);
      } else if (e.deadline_ns < earliest) {
        earliest = e.deadline_ns;
      }
    } else if (e.kind == Kind::Mailbox && !e.armed && !e.ready) {
      to_arm.push_back(Arm{make_token(slot, e.gen), e.mb, e.mb_handle});
    }
  }
  mu_.unlock();
  for (const Arm& a : to_arm) {
    const int h = a.fn(a.mb);  // posts the pending receive if none
    const Runtime::SelAttach st =
        h >= 0 ? rt_->sel_attach_recv(h, &Selector::waiter_fire, this,
                                      a.token)
               : Runtime::SelAttach::Invalid;
    mu_.lock();
    Entry* e = entry_for(a.token);
    if (e != nullptr) {
      e->handle = h;
      if (st == Runtime::SelAttach::Ready) {
        mark_ready_locked(static_cast<std::uint32_t>(a.token & 0xFFFFFFFFu));
      } else if (st == Runtime::SelAttach::Armed) {
        e->armed = true;
      }
    }
    mu_.unlock();
  }
  return earliest;
}

std::size_t Selector::harvest(std::vector<Ready>* out) {
  struct Cand {
    std::uint64_t token;
    Kind kind;
    int handle;
    void* mb;
    int (*mb_fn)(void*);
  };
  std::vector<Cand> cands;
  mu_.lock();
  if (ready_list_.empty()) {
    mu_.unlock();
    return 0;
  }
  std::vector<std::uint64_t> toks;
  toks.swap(ready_list_);
  ready_pending_.store(0, std::memory_order_relaxed);
  for (std::uint64_t t : toks) {
    Entry* e = entry_for(t);
    if (e == nullptr) continue;  // retired between fire and harvest
    e->ready = false;
    cands.push_back(Cand{t, e->kind, e->handle, e->mb, e->mb_handle});
  }
  mu_.unlock();

  std::size_t reported = 0;
  for (const Cand& c : cands) {
    bool report = false;
    int handle = c.handle;
    switch (c.kind) {
      case Kind::Timer:
        report = true;  // the clock only moves forward
        break;
      case Kind::Recv:
        // A fire means the nx delivery happened; verify through the
        // non-consuming chant-level test (latches hdr for msgtest).
        report = rt_->sel_recv_ready(c.handle);
        break;
      case Kind::Call: {
        const Runtime::SelAttach st = rt_->sel_call_progress(
            c.handle, &Selector::waiter_fire, this, c.token);
        if (st == Runtime::SelAttach::Ready) {
          report = true;
        } else if (st == Runtime::SelAttach::Armed) {
          // Inline part landed, tail still in flight: waiter re-armed on
          // the tail; the entry stays registered, nothing reported.
          mu_.lock();
          if (Entry* e = entry_for(c.token)) e->armed = true;
          mu_.unlock();
        }
        break;
      }
      case Kind::Mailbox: {
        // Level-triggered: readiness is "a message is available NOW".
        // The owner may have drained it since the fire — re-check, and
        // re-arm when empty so the next delivery still wakes us.
        handle = c.mb_fn(c.mb);
        report = handle >= 0 && rt_->sel_recv_ready(handle);
        const Runtime::SelAttach st =
            handle >= 0 ? rt_->sel_attach_recv(
                              handle, &Selector::waiter_fire, this, c.token)
                        : Runtime::SelAttach::Invalid;
        mu_.lock();
        if (Entry* e = entry_for(c.token)) {
          e->handle = handle;
          e->armed = (st == Runtime::SelAttach::Armed);
          if (st == Runtime::SelAttach::Ready) report = true;
        }
        mu_.unlock();
        break;
      }
      case Kind::None:
        break;
    }
    if (!report) continue;
    ++reported;
    if (out != nullptr) {
      Ready r;
      r.kind = c.kind;
      r.token = c.token;
      r.handle = (c.kind == Kind::Recv || c.kind == Kind::Call ||
                  c.kind == Kind::Mailbox)
                     ? handle
                     : -1;
      r.status = StatusCode::Ok;
      out->push_back(r);
    }
    // One-shot kinds auto-deregister on report; mailboxes stay (their
    // per-wait arming state was settled above).
    if (c.kind == Kind::Recv || c.kind == Kind::Call ||
        c.kind == Kind::Timer) {
      mu_.lock();
      Entry* e = entry_for(c.token);
      if (e != nullptr) {
        retire_locked(static_cast<std::uint32_t>(c.token & 0xFFFFFFFFu));
      }
      mu_.unlock();
      if (c.kind == Kind::Recv) {
        rt_->sel_detach_recv(c.handle, this);
      } else if (c.kind == Kind::Call) {
        rt_->sel_detach_call(c.handle, this);
      }
    }
  }
  return reported;
}

Status Selector::wait(Deadline deadline, std::vector<Ready>* out) {
  if (out != nullptr) out->clear();
  validate::check_blocking("chant::Selector::wait",
                           /*timed=*/!deadline.is_infinite());
  mu_.lock();
  const bool empty = live_ == 0;
  mu_.unlock();
  if (empty) return StatusCode::Invalid;
  const std::uint64_t user_dl = rt_->resolve_deadline(deadline);
  const lwt::PollRequest req{&Selector::poll_test, this};
  for (;;) {
    // A poll_progress hit hands the flush to the woken fiber: run it
    // before harvesting so freshly queued fires become marked entries.
    rt_->ep_.flush_waiter_fires();
    const std::uint64_t timer_dl = arm_and_sweep();
    if (harvest(out) > 0) return StatusCode::Ok;
    if (user_dl != lwt::kNoDeadline && rt_->sched_.now() >= user_dl) {
      ++rt_->rsr_stats_.deadline_timeouts;
      return StatusCode::DeadlineExceeded;
    }
    // Park until a fire marks an entry (poll_wake), a progress probe
    // reveals queued fires, or the earliest deadline — ours or a timer
    // registration's — expires. Spurious wakes just loop.
    (void)rt_->block_on_predicate(req, std::min(user_dl, timer_dl));
  }
}

}  // namespace chant
