// wire.hpp — internal on-the-wire layouts for Chant runtime traffic.
//
// All simulated processes run one SPMD binary, so these PODs can travel
// as raw bytes (same layout everywhere) — the same assumption the real
// Chant made for function addresses on the Paragon.
#pragma once

#include <cstddef>
#include <cstdint>

#include "chant/gid.hpp"
#include "chant/runtime.hpp"
#include "lwt/thread.hpp"

namespace chant::wire {

/// Builtin RSR handler ids (installed before any user handler).
inline constexpr int kHShutdown = 0;
inline constexpr int kHCreate = 1;
inline constexpr int kHJoin = 2;
inline constexpr int kHCancel = 3;
inline constexpr int kHDetach = 4;
inline constexpr int kHSetPrio = 5;
inline constexpr int kHGetPrio = 6;
inline constexpr int kFirstUserHandler = chant::kFirstUserHandler;

/// Replies at or below this size travel inline with the reply header;
/// larger replies are followed by a separate payload message.
inline constexpr std::size_t kInlineReply = 1024;

/// Request envelope: [Rsr][arg bytes...] sent to the server thread.
struct Rsr {
  std::int32_t handler = 0;
  std::int32_t needs_reply = 0;
  std::int32_t reply_seq = 0;  ///< pairs the reply with this request
  Gid from{0, 0, 0};
  std::int32_t attempt = 0;    ///< 0 = first send, >0 = retry resend
  std::int32_t retryable = 0;  ///< enters the server dedup window
  /// Distinguishes a *new* call whose 12-bit reply_seq wrapped onto a
  /// key still in the server dedup window from a genuine duplicate of
  /// the call that created the entry (same nonce = same call).
  std::uint32_t nonce = 0;
};

/// Reply envelope: [Reply][inline payload...]. If `tail` is set the
/// payload did not fit inline and follows as a kTagRsrTail message.
struct Reply {
  std::uint32_t len = 0;
  std::uint32_t tail = 0;
};

struct Create {
  lwt::EntryFn entry = nullptr;          // plain entry (SPMD-valid)
  std::uint64_t marshalled_entry = 0;    // MarshalledEntry as integer
  std::uint64_t arg = 0;                 // raw argument value
  std::uint64_t stack_size = 0;
  std::int32_t priority = 0;
  std::int32_t detached = 0;
  std::uint32_t payload_len = 0;         // marshalled bytes following
};

struct CreateReply {
  std::int32_t status = 0;
  Gid gid{0, 0, 0};
};

struct Lid {
  std::int32_t lid = 0;
};

struct Prio {
  std::int32_t lid = 0;
  std::int32_t priority = 0;
};

struct PrioReply {
  std::int32_t status = 0;
  std::int32_t priority = 0;
};

struct JoinReply {
  std::int32_t status = 0;
  std::int32_t canceled = 0;
  std::uint64_t retval = 0;
};

struct Status {
  std::int32_t status = 0;
};

}  // namespace chant::wire
