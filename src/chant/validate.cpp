// validate.cpp — runtime concurrency validator (chant/validate.hpp).
//
// All mutable state lives behind one std::mutex. The hooks run on
// whichever OS thread hosts the calling fiber — one per simulated
// process under nx::Machine — so the guard must be an OS-level mutex,
// never an lwt primitive (which would recurse into the hooks). Nothing
// here yields: holding g_mu never spans a fiber switch.
#include "chant/validate.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#if defined(__GLIBC__) || defined(__gnu_linux__)
#include <execinfo.h>
#define CHANT_VALIDATE_BACKTRACE 1
#endif

#include "lwt/scheduler.hpp"
#include "lwt/thread.hpp"
#include "lwt/validate.hpp"

namespace chant::validate {

std::atomic<bool> g_enabled{false};

namespace {

constexpr std::uint8_t kPoisonByte = 0xDB;
constexpr int kMaxStackFrames = 16;

/// A captured acquisition stack. Raw return addresses; symbolized only
/// when a report is actually emitted.
struct StackTrace {
  void* pc[kMaxStackFrames];
  int depth = 0;
};

StackTrace capture_stack() {
  StackTrace st;
#if defined(CHANT_VALIDATE_BACKTRACE)
  // glibc backtrace unwinds by FDE; the asm fiber trampoline
  // (lwt_asm_fiber_start) has none and boot frames seed rbp = 0, so the
  // walk terminates cleanly at the foot of a fiber stack.
  st.depth = backtrace(st.pc, kMaxStackFrames);
  if (st.depth < 0) st.depth = 0;
#endif
  return st;
}

void append_stack(std::ostringstream& os, const StackTrace& st,
                  const char* indent) {
#if defined(CHANT_VALIDATE_BACKTRACE)
  if (st.depth == 0) {
    os << indent << "(no stack captured)\n";
    return;
  }
  char** syms = backtrace_symbols(st.pc, st.depth);
  for (int i = 0; i < st.depth; ++i) {
    os << indent << '#' << i << ' '
       << (syms != nullptr ? syms[i] : "<unknown>") << '\n';
  }
  std::free(syms);
#else
  os << indent << "(stack capture unavailable on this platform)\n";
#endif
}

/// One lock currently held by a fiber.
struct HeldLock {
  const void* lock;
  const char* kind;
  StackTrace stack;
};

/// A recorded lock-order edge from -> to: some fiber once acquired `to`
/// while holding `from`. The first occurrence's stacks are kept.
struct Edge {
  const void* to;
  const char* from_kind;
  const char* to_kind;
  StackTrace hold_stack;     ///< where `from` was acquired
  StackTrace acquire_stack;  ///< where `to` was acquired on top of it
};

struct State {
  std::mutex mu;
  std::unordered_map<const void*, std::vector<Edge>> edges;
  std::unordered_map<const lwt::Tcb*, std::vector<HeldLock>> held;
  /// key: block data pointer; value: (owning pool, poisoned size)
  std::unordered_map<const void*, std::pair<const void*, std::size_t>>
      pool_blocks;
  /// edge pairs already reported as closing a cycle (dedup)
  std::set<std::pair<const void*, const void*>> reported_cycles;
  Sink sink = nullptr;
  void* sink_ctx = nullptr;
  std::atomic<std::uint64_t> counts[kNumViolations] = {};
};

State& state() {
  static State* s = new State;  // leaked: hooks may outlive static dtors
  return *s;
}

/// Must be called with s.mu held.
void emit_locked(State& s, Violation kind, std::string message) {
  s.counts[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
  const Report r{kind, std::move(message)};
  if (s.sink != nullptr) {
    s.sink(s.sink_ctx, r);
  } else {
    std::fprintf(stderr, "%s", r.message.c_str());
  }
}

/// Depth-first search for a path `from` -> ... -> `target` in the edge
/// graph. Appends the path's edges to `path` and returns true if found.
/// Must be called with s.mu held.
bool find_path(State& s, const void* from, const void* target,
               std::set<const void*>& visited,
               std::vector<const Edge*>& path) {
  if (!visited.insert(from).second) return false;
  auto it = s.edges.find(from);
  if (it == s.edges.end()) return false;
  for (const Edge& e : it->second) {
    path.push_back(&e);
    if (e.to == target || find_path(s, e.to, target, visited, path)) {
      return true;
    }
    path.pop_back();
  }
  return false;
}

/// Records the edge from->to and reports a potential deadlock if the
/// reverse direction is already reachable. Must be called with s.mu held.
void add_edge_locked(State& s, const HeldLock& from, const void* to,
                     const char* to_kind, const StackTrace& to_stack,
                     const lwt::Tcb* self) {
  auto& out = s.edges[from.lock];
  for (const Edge& e : out) {
    if (e.to == to) return;  // known ordering, first stacks win
  }
  out.push_back(Edge{to, from.kind, to_kind, from.stack, to_stack});

  // Does `to` already reach `from.lock`? Then this acquisition closes a
  // cycle: two code paths take these locks in opposite orders.
  std::set<const void*> visited;
  std::vector<const Edge*> path;
  if (!find_path(s, to, from.lock, visited, path)) return;
  if (!s.reported_cycles.insert({from.lock, to}).second) return;

  std::ostringstream os;
  os << "chant-validate: POTENTIAL DEADLOCK (lock-order cycle)\n"
     << "  fiber #" << (self != nullptr ? self->id : 0) << " '"
     << (self != nullptr ? self->name : "?") << "' acquired " << to_kind
     << " " << to << " while holding " << from.kind << " " << from.lock
     << ",\n  but the opposite order is already on record.\n"
     << "  this acquisition of " << to << ":\n";
  append_stack(os, to_stack, "    ");
  os << "  while holding " << from.lock << " acquired at:\n";
  append_stack(os, from.stack, "    ");
  for (const Edge* e : path) {
    os << "  conflicting edge (" << e->from_kind << " -> " << e->to_kind
       << " " << e->to << ") acquired at:\n";
    append_stack(os, e->acquire_stack, "    ");
  }
  emit_locked(s, Violation::kLockOrderCycle, os.str());
}

// ------------------------------------------------------------ lwt hooks

void on_lock_acquired(lwt::Tcb* self, const void* lock, const char* kind) {
  State& s = state();
  const StackTrace st = capture_stack();
  std::lock_guard<std::mutex> g(s.mu);
  std::vector<HeldLock>& held = s.held[self];
  for (const HeldLock& h : held) {
    if (h.lock != lock) add_edge_locked(s, h, lock, kind, st, self);
  }
  held.push_back(HeldLock{lock, kind, st});
}

void on_lock_released(lwt::Tcb* self, const void* lock) {
  State& s = state();
  std::lock_guard<std::mutex> g(s.mu);
  auto it = s.held.find(self);
  if (it == s.held.end()) return;
  std::vector<HeldLock>& held = it->second;
  for (auto h = held.rbegin(); h != held.rend(); ++h) {
    if (h->lock == lock) {
      held.erase(std::next(h).base());
      break;
    }
  }
  if (held.empty()) s.held.erase(it);
}

void report_blocking(lwt::Tcb* self, const char* what) {
  State& s = state();
  std::ostringstream os;
  os << "chant-validate: BLOCKING CALL IN NO-BLOCK CONTEXT\n"
     << "  fiber #" << self->id << " '" << self->name << "' called " << what
     << " (unbounded wait)\n  inside "
     << (self->no_block_what != nullptr ? self->no_block_what
                                        : "a no-block scope")
     << "; a wedged wait here stalls the whole RSR service plane.\n"
     << "  call site:\n";
  append_stack(os, capture_stack(), "    ");
  std::lock_guard<std::mutex> g(s.mu);
  emit_locked(s, Violation::kBlockingInHandler, os.str());
}

void on_blocking_call(lwt::Tcb* self, const char* what, bool timed) {
  if (timed || self == nullptr || self->no_block_depth == 0) return;
  report_blocking(self, what);
}

constexpr lwt::ValidateHooks kHooks{&on_lock_acquired, &on_lock_released,
                                    &on_blocking_call};

}  // namespace

void enable() {
  (void)state();  // construct before the hooks can fire
  g_enabled.store(true, std::memory_order_relaxed);
  lwt::g_validate_hooks.store(&kHooks, std::memory_order_release);
}

void disable() {
  lwt::g_validate_hooks.store(nullptr, std::memory_order_release);
  g_enabled.store(false, std::memory_order_relaxed);
  reset();
}

void enable_from_env() {
  static const bool wants = [] {
    const char* v = std::getenv("CHANT_VALIDATE");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }();
  if (wants && !enabled()) enable();
}

void set_sink(Sink sink, void* ctx) noexcept {
  State& s = state();
  std::lock_guard<std::mutex> g(s.mu);
  s.sink = sink;
  s.sink_ctx = ctx;
}

std::uint64_t violation_count() noexcept {
  State& s = state();
  std::uint64_t total = 0;
  for (const auto& c : s.counts) total += c.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t violation_count(Violation kind) noexcept {
  return state().counts[static_cast<int>(kind)].load(
      std::memory_order_relaxed);
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> g(s.mu);
  s.edges.clear();
  s.held.clear();
  s.pool_blocks.clear();
  s.reported_cycles.clear();
  for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
}

HandlerScope::HandlerScope(const char* what) noexcept {
  if (!enabled()) return;
  lwt::Tcb* self = lwt::Scheduler::self();
  if (self == nullptr) return;
  prev_what_ = self->no_block_what;
  self->no_block_what = what;
  ++self->no_block_depth;
  armed_ = true;
}

HandlerScope::~HandlerScope() {
  if (!armed_) return;
  lwt::Tcb* self = lwt::Scheduler::self();
  // A HandlerScope never outlives its fiber (it brackets a call on the
  // fiber's own stack), so self matches the constructor's fiber.
  if (self == nullptr || self->no_block_depth == 0) return;
  --self->no_block_depth;
  self->no_block_what = prev_what_;
}

void check_blocking(const char* what, bool timed) noexcept {
  if (!enabled() || timed) return;
  lwt::Tcb* self = lwt::Scheduler::self();
  if (self == nullptr || self->no_block_depth == 0) return;
  report_blocking(self, what);
}

// --------------------------------------------------- BufferPool plumbing

void pool_double_release(const void* pool) {
  State& s = state();
  std::ostringstream os;
  os << "chant-validate: BUFFERPOOL DOUBLE RELEASE\n"
     << "  pool " << pool
     << ": release() received a moved-from (capacity-0) buffer —\n"
     << "  the same block was already released (or was never acquired).\n"
     << "  release site:\n";
  append_stack(os, capture_stack(), "    ");
  std::lock_guard<std::mutex> g(s.mu);
  emit_locked(s, Violation::kPoolDoubleRelease, os.str());
}

void pool_poison(const void* pool, std::uint8_t* data, std::size_t size) {
  if (data == nullptr) return;
  std::memset(data, kPoisonByte, size);
  State& s = state();
  std::lock_guard<std::mutex> g(s.mu);
  s.pool_blocks[data] = {pool, size};
}

void pool_unpoison(const void* pool, std::uint8_t* data, std::size_t size) {
  if (data == nullptr) return;
  State& s = state();
  std::unique_lock<std::mutex> g(s.mu);
  auto it = s.pool_blocks.find(data);
  if (it == s.pool_blocks.end()) return;  // poisoned before enable()/reset()
  const std::size_t poisoned = it->second.second;
  s.pool_blocks.erase(it);
  g.unlock();

  const std::size_t check = poisoned < size ? poisoned : size;
  std::size_t bad = check;
  for (std::size_t i = 0; i < check; ++i) {
    if (data[i] != kPoisonByte) {
      bad = i;
      break;
    }
  }
  if (bad == check) return;

  std::ostringstream os;
  os << "chant-validate: BUFFERPOOL USE AFTER RELEASE\n"
     << "  pool " << pool << ", block " << static_cast<const void*>(data)
     << ": byte " << bad << " of " << check
     << " was overwritten (0x" << std::hex
     << static_cast<unsigned>(data[bad]) << std::dec
     << " != poison 0xdb) while the block sat in the free list.\n"
     << "  Someone kept writing through a buffer after releasing it.\n"
     << "  detected at acquire:\n";
  append_stack(os, capture_stack(), "    ");
  g.lock();
  emit_locked(s, Violation::kPoolUseAfterRelease, os.str());
}

}  // namespace chant::validate
