// rsr.cpp — remote service requests (paper §3.2).
//
// Unannounced messages are received by a dedicated, priority-boosted
// *server thread* per process (paper Fig. 7). The server repeatedly
// blocks (under the normal polling policy) on a wildcard receive for
// RSR-tagged messages, dispatches the registered handler, and — unless
// the handler deferred the reply to a helper thread — sends the reply
// back to the requesting thread as an ordinary point-to-point message.
//
// Synchronous calls are built on the asynchronous machinery: call_async
// pre-posts the reply receive (tagged with a per-request sequence number
// so out-of-order replies pair correctly), ships the request, and hands
// back a handle; call_wait blocks under the configured polling policy.
//
// Every message on this plane travels as a gather descriptor — the
// envelope and the caller's payload go to nx as an iovec, so nothing is
// marshalled into a temporary vector first — and the scratch buffers
// (the server's request buffer, each call's reply landing zone) come
// from the runtime's BufferPool, so a steady-state RSR loop performs
// zero per-call heap allocations.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "chant/hb.hpp"
#include "chant/runtime.hpp"
#include "chant/validate.hpp"
#include "wire.hpp"

namespace chant {

int Runtime::register_handler(Handler h) {
  handlers_.push_back(h);
  return static_cast<int>(handlers_.size()) - 1;
}

void Runtime::server_loop() {
  // Pooled request buffer plus a persistent reply vector whose capacity
  // survives across requests: after warmup the dispatch loop touches the
  // heap zero times (the bench smoke gate asserts exactly this).
  std::vector<std::uint8_t> buf =
      pool_.acquire(sizeof(wire::Rsr) + cfg_.rsr_buffer_size);
  std::vector<std::uint8_t> rep;
  while (!server_stop_) {
    const MsgInfo mi = recv_blocking(kTagRsr, buf.data(), buf.size(),
                                     kAnyThread, /*internal=*/true);
    if (!mi.status.ok() || mi.len < sizeof(wire::Rsr)) {
      std::fprintf(stderr, "chant: malformed RSR (%zu bytes) dropped\n",
                   mi.len);
      continue;
    }
    wire::Rsr req;
    std::memcpy(&req, buf.data(), sizeof req);
    const std::uint8_t* body = buf.data() + sizeof req;
    const std::size_t body_len = mi.len - sizeof req;

    RsrContext ctx{req.from, req.needs_reply != 0, false, req.reply_seq};
    if (req.handler < 0 ||
        req.handler >= static_cast<int>(handlers_.size()) ||
        handlers_[static_cast<std::size_t>(req.handler)] == nullptr) {
      std::fprintf(stderr, "chant: RSR for unknown handler %d dropped\n",
                   req.handler);
      if (ctx.needs_reply) {
        wire::Status st{EINVAL};
        reply(ctx, &st, sizeof st);
      }
      continue;
    }
    // Duplicate suppression for retryable requests (DESIGN.md §8.3): a
    // request already executed gets its recorded reply replayed without
    // re-dispatch; one still executing (a deferred handler's helper has
    // the reply in hand) is dropped — the original reply is on its way.
    // The window is a bounded FIFO; the client's backoff schedule keeps
    // retries well inside it. An entry only suppresses requests carrying
    // the nonce that created it: the client's 12-bit reply_seq wraps
    // every 4096 calls, so a request landing on an occupied key with a
    // *different* nonce is a new call whose stale entry must be
    // displaced — replaying it would return another call's bytes, and a
    // never-done deferred entry would swallow it and every retry.
    std::uint64_t dkey = 0;
    bool record_reply = false;
    if (req.retryable != 0 && ctx.needs_reply) {
      dkey = dedup_key(req.from, req.reply_seq);
      const auto it = dedup_.find(dkey);
      if (it != dedup_.end()) {
        if (it->second.nonce == req.nonce) {
          if (it->second.done) {
            ++rsr_stats_.dup_replays;
            reply(ctx, it->second.reply.data(), it->second.reply.size());
          } else {
            ++rsr_stats_.dup_drops;
          }
          continue;
        }
        // New call reusing a wrapped seq: reset the entry in place (it
        // keeps its eviction slot) and dispatch normally.
        it->second = DedupEntry{};
        it->second.nonce = req.nonce;
        record_reply = true;
      } else {
        while (dedup_.size() >= kDedupWindow && !dedup_fifo_.empty()) {
          dedup_.erase(dedup_fifo_.front());
          dedup_fifo_.pop_front();
        }
        const auto ins = dedup_.emplace(dkey, DedupEntry{});
        ins.first->second.nonce = req.nonce;
        dedup_fifo_.push_back(dkey);
        record_reply = true;
      }
    }
    rep.clear();  // capacity retained from the previous dispatch
    if (cfg_.rsr_observer != nullptr) {
      cfg_.rsr_observer(cfg_.rsr_observer_ctx, req.handler, req.from.pe,
                        req.from.thread);
    }
    // Paper §3.2: on receipt of a request the server assumes a higher
    // priority so the dispatch (and its reply traffic) preempts queued
    // computation threads at every scheduling point it crosses.
    lwt::Tcb* me = lwt::Scheduler::self();
    const int base_prio = me->priority;
    if (cfg_.server_high_priority) {
      sched_.set_priority(me, lwt::kServerPriority);
    }
    {
      // Validator context tag (DESIGN.md §9): while the handler body
      // runs, unbounded blocking calls on this fiber are reported — a
      // handler that wedges stalls every future RSR on this process.
      validate::HandlerScope vscope("an RSR handler dispatch");
      handlers_[static_cast<std::size_t>(req.handler)](*this, ctx, body,
                                                       body_len, rep);
    }
    if (ctx.needs_reply && !ctx.deferred) {
      reply(ctx, rep.data(), rep.size());
      if (record_reply) {
        // Record after the (possibly fault-dropped) send: a retry of this
        // request replays these bytes instead of re-running the handler.
        const auto it = dedup_.find(dkey);
        if (it != dedup_.end()) {
          it->second.done = true;
          it->second.reply.assign(rep.begin(), rep.end());
        }
      }
    }
    // Restore under *every* polling policy. With scheduler-polls
    // policies the server already parks at kServerPriority so this is
    // normally a no-op, but a server whose priority was lowered by the
    // user must not have that setting silently clobbered by a dispatch.
    if (cfg_.server_high_priority) {
      sched_.set_priority(me, base_prio);
    }
  }
  pool_.release(std::move(buf));
}

void Runtime::reply(const RsrContext& ctx, const void* data,
                    std::size_t len) {
  const nx::IoVec iov{data, len};
  replyv(ctx, &iov, len > 0 ? 1u : 0u);
}

void Runtime::replyv(const RsrContext& ctx, const nx::IoVec* iov,
                     std::size_t iovcnt) {
  if (iovcnt + 1 > nx::kMaxIov) {
    throw std::invalid_argument("chant::replyv: too many fragments");
  }
  const std::size_t len = nx::iov_total(iov, iovcnt);
  wire::Reply hdr;
  hdr.len = static_cast<std::uint32_t>(len);
  if (len <= wire::kInlineReply) {
    // {header, payload...} leave as one gather descriptor: no marshal
    // vector, no copy before the wire.
    nx::IoVec all[nx::kMaxIov];
    all[0] = {&hdr, sizeof hdr};
    for (std::size_t i = 0; i < iovcnt; ++i) all[i + 1] = iov[i];
    send_from(kServerLid, rsr_reply_tag(ctx.reply_seq), all, iovcnt + 1,
              ctx.from, /*internal=*/true);
    return;
  }
  // Large reply: announce the tail in the header message, then ship the
  // payload as its own (per-source-ordered) message.
  hdr.tail = 1;
  send_from(kServerLid, rsr_reply_tag(ctx.reply_seq), &hdr, sizeof hdr,
            ctx.from, /*internal=*/true);
  send_from(kServerLid, rsr_tail_tag(ctx.reply_seq), iov, iovcnt, ctx.from,
            /*internal=*/true);
}

int Runtime::call_async(int dst_pe, int dst_process, int handler,
                        const void* arg, std::size_t len) {
  const nx::IoVec iov{arg, len};
  return call_asyncv(dst_pe, dst_process, handler, &iov, len > 0 ? 1u : 0u);
}

int Runtime::call_asyncv(int dst_pe, int dst_process, int handler,
                         const nx::IoVec* iov, std::size_t iovcnt) {
  return call_asyncv_ex(dst_pe, dst_process, handler, iov, iovcnt,
                        /*retryable=*/false);
}

int Runtime::call_asyncv_ex(int dst_pe, int dst_process, int handler,
                            const nx::IoVec* iov, std::size_t iovcnt,
                            bool retryable) {
  if (iovcnt + 1 > nx::kMaxIov) {
    throw std::invalid_argument("chant: RSR request has too many fragments");
  }
  const std::size_t len = nx::iov_total(iov, iovcnt);
  if (len > cfg_.rsr_buffer_size) {
    throw std::invalid_argument("chant: RSR payload exceeds rsr_buffer_size");
  }
  const Gid me = self();
  if (me.thread < 0) {
    throw std::logic_error("chant: RSR call from a fiber with no thread id");
  }
  // Allocate the async-call record and its reply sequence number.
  std::uint32_t idx;
  if (!free_calls_.empty()) {
    idx = free_calls_.back();
    free_calls_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(calls_.size());
    calls_.emplace_back();  // deque: existing records stay pinned
  }
  AsyncCall& c = calls_[idx];
  c.idx = idx;
  c.active = true;
  c.seq = alloc_reply_seq();
  c.nonce = next_call_nonce_++;
  c.server = Gid{dst_pe, dst_process, kServerLid};
  c.rbuf = pool_.acquire(sizeof(wire::Reply) + wire::kInlineReply);
  c.wait = WaitCtx{};
  c.wait.ep = &ep_;
  c.tail_wait = WaitCtx{};
  c.tail_posted = false;
  // Pre-post the reply receive (zero-copy path) before the request can
  // possibly be serviced.
  const TagCodec::Pattern pat = codec_.pattern(
      me.thread, kServerLid, rsr_reply_tag(c.seq), /*internal=*/true);
  c.wait.nxh = ep_.irecv(dst_pe, dst_process, pat.tag, pat.tag_mask,
                         c.rbuf.data(), c.rbuf.size(), pat.channel,
                         pat.channel_mask);
  send_rsr(c, handler, iov, iovcnt, /*attempt=*/0, retryable);
  // 15 generation bits keep the packed handle non-negative; the
  // comparison below masks identically so slot reuse wraps safely.
  return static_cast<int>(((c.gen & 0x7FFFu) << 16) | idx);
}

void Runtime::send_rsr(const AsyncCall& c, int handler, const nx::IoVec* iov,
                       std::size_t iovcnt, int attempt, bool retryable) {
  // The request envelope rides the same gather descriptor as the
  // caller's fragments; send_from returns only once the buffers are
  // reusable, so the stack-local envelope is safe.
  wire::Rsr req;
  req.handler = handler;
  req.needs_reply = 1;
  req.reply_seq = c.seq;
  req.from = self();
  req.attempt = attempt;
  req.retryable = retryable ? 1 : 0;
  req.nonce = c.nonce;
  nx::IoVec frags[nx::kMaxIov];
  frags[0] = {&req, sizeof req};
  for (std::size_t i = 0; i < iovcnt; ++i) frags[i + 1] = iov[i];
  send_from(req.from.thread, kTagRsr, frags, iovcnt + 1, c.server,
            /*internal=*/true);
}

int Runtime::alloc_reply_seq() {
  for (int tries = 0; tries < 0x1000; ++tries) {
    const int seq = next_reply_seq_;
    next_reply_seq_ = (next_reply_seq_ + 1) & 0xFFF;
    if (stale_replies_.empty()) return seq;  // common case: zero overhead
    const auto it = stale_replies_.find(seq);
    if (it == stale_replies_.end()) return seq;
    // A previous user of this sequence number abandoned a reply that may
    // still be in flight. Consume whatever has arrived, then either
    // declare the seq clean (its dirty window aged out — anything left
    // was dropped by the net) or skip it this time around.
    const Gid me = self();
    drain_stale(codec_.pattern(me.thread, kServerLid, rsr_reply_tag(seq),
                               /*internal=*/true));
    drain_stale(codec_.pattern(me.thread, kServerLid, rsr_tail_tag(seq),
                               /*internal=*/true));
    if (sched_.now() >= it->second) {
      stale_replies_.erase(it);
      return seq;
    }
    ++rsr_stats_.stale_skipped;
  }
  // 4096 simultaneously-dirty sequence numbers: not reachable without
  // thousands of abandoned in-flight calls inside one TTL window.
  throw std::runtime_error("chant: reply sequence space exhausted");
}

bool Runtime::drain_stale(const TagCodec::Pattern& pat) {
  bool drained = false;
  // iprobe filters by tag only; the posted receive applies the full
  // pattern. A probe hit the receive cannot match (another lid's traffic
  // in HeaderField mode) parks the receive, which is then withdrawn.
  while (ep_.iprobe(nx::kAnyPe, nx::kAnyProc, pat.tag, pat.tag_mask)) {
    std::vector<std::uint8_t> scratch =
        pool_.acquire(sizeof(wire::Reply) + wire::kInlineReply);
    WaitCtx w;
    w.ep = &ep_;
    w.nxh = ep_.irecv(nx::kAnyPe, nx::kAnyProc, pat.tag, pat.tag_mask,
                      scratch.data(), scratch.size(), pat.channel,
                      pat.channel_mask);
    const bool got = wait_test(&w);
    if (!got) ep_.cancel_recv(w.nxh);
    pool_.release(std::move(scratch));
    if (!got) break;
    ++rsr_stats_.stale_drained;
    drained = true;
  }
  return drained;
}

void Runtime::note_stale_reply(const AsyncCall& c) {
  stale_replies_[c.seq] = sched_.deadline_after(kStaleReplyTtl);
}

Runtime::AsyncCall& Runtime::checked_call(int handle) {
  const auto idx = static_cast<std::uint32_t>(handle) & 0xFFFFu;
  const auto gen = static_cast<std::uint32_t>(handle) >> 16;
  if (idx >= calls_.size() || (calls_[idx].gen & 0x7FFFu) != gen ||
      !calls_[idx].active) {
    throw std::invalid_argument("chant: stale or invalid RSR handle");
  }
  return calls_[idx];
}

bool Runtime::reply_parts_done(AsyncCall& c) {
  // Precondition: the inline reply has landed (c.wait.done).
  if (!c.tail_posted) {
    wire::Reply rep;
    std::memcpy(&rep, c.rbuf.data(), sizeof rep);
    if (rep.tail == 0) return true;
    // The header announces a tail message; post its receive now — the
    // length is unknown before the header arrives, and posting (rather
    // than blocking in finish_call) keeps call_test nonblocking for
    // arbitrarily large replies. Per-source FIFO orders the tail after
    // the header, so this receive can never pair with a stale payload.
    const Gid me = self();
    c.tail_buf.resize(rep.len);
    c.tail_wait = WaitCtx{};
    c.tail_wait.ep = &ep_;
    const TagCodec::Pattern pat = codec_.pattern(
        me.thread, kServerLid, rsr_tail_tag(c.seq), /*internal=*/true);
    c.tail_wait.nxh = ep_.irecv(c.server.pe, c.server.process, pat.tag,
                                pat.tag_mask, c.tail_buf.data(),
                                c.tail_buf.size(), pat.channel,
                                pat.channel_mask);
    c.tail_posted = true;
  }
  return wait_test(&c.tail_wait);
}

void Runtime::abandon_call(AsyncCall& c) {
  if (!c.active) return;
  // Deregister from any Selector before the reply receives are
  // withdrawn (the nx handles must be live to clear their waiters).
  sel_notify_call_retired(c);
  // Track whether any part of the reply may still arrive with no
  // receive posted: that sequence number is then dirty until drained
  // (alloc_reply_seq) or aged out.
  bool in_flight = false;
  if (!c.wait.done) {
    if (ep_.cancel_recv(c.wait.nxh, &c.wait.hdr)) {
      in_flight = true;  // withdrawn before the reply header landed
    } else {
      c.wait.done = true;  // lost the race: header harvested into rbuf
    }
  }
  // A peer_gone completion delivered no bytes: rbuf holds no header and
  // the (dead) server can have nothing in flight — skip the parse.
  if (c.wait.done && !c.wait.hdr.peer_gone) {
    wire::Reply rep;
    std::memcpy(&rep, c.rbuf.data(), sizeof rep);
    if (rep.tail != 0) {
      if (!c.tail_posted) {
        in_flight = true;  // announced tail was never posted
      } else if (!c.tail_wait.done && ep_.cancel_recv(c.tail_wait.nxh)) {
        in_flight = true;
      }
    }
  }
  if (in_flight) note_stale_reply(c);
  pool_.release(std::move(c.rbuf));
  c.rbuf = std::vector<std::uint8_t>{};
  c.tail_buf = std::vector<std::uint8_t>{};
  c.active = false;
  ++c.gen;
  free_calls_.push_back(c.idx);
}

std::vector<std::uint8_t> Runtime::finish_call(AsyncCall& c) {
  sel_notify_call_retired(c);  // every part landed; registration is done
  wire::Reply rep;
  std::memcpy(&rep, c.rbuf.data(), sizeof rep);
  std::vector<std::uint8_t> out;
  bool tail_mismatch = false;
  if (rep.tail == 0) {
    out.resize(rep.len);
    if (rep.len > 0) {
      std::memcpy(out.data(), c.rbuf.data() + sizeof rep, rep.len);
    }
  } else {
    // The tail already landed directly in tail_buf (reply_parts_done
    // posted the receive); hand it to the caller without another copy.
    tail_mismatch = c.tail_wait.hdr.len != rep.len;
    out = std::move(c.tail_buf);
  }
  pool_.release(std::move(c.rbuf));
  c.rbuf = std::vector<std::uint8_t>{};
  c.tail_buf = std::vector<std::uint8_t>{};
  c.active = false;
  ++c.gen;
  free_calls_.push_back(c.idx);
  if (tail_mismatch) {
    throw std::runtime_error("chant: RSR tail length mismatch");
  }
  return out;
}

Status Runtime::call_test(int handle, std::vector<std::uint8_t>* reply_out) {
  AsyncCall& c = checked_call(handle);
  if (!wait_test(&c.wait)) return StatusCode::Pending;
  if (c.wait.hdr.peer_gone) {
    // The server's process died before replying: rbuf holds no header
    // to parse and no reply can ever arrive. Terminal — retire the call.
    abandon_call(c);
    return StatusCode::PeerGone;
  }
  if (!reply_parts_done(c)) {
    return StatusCode::Pending;  // tail announced, still in flight
  }
  std::vector<std::uint8_t> out = finish_call(c);
  if (reply_out != nullptr) *reply_out = std::move(out);
  return StatusCode::Ok;
}

Status Runtime::wait_call_until(AsyncCall& c, std::uint64_t deadline_ns) {
  // Call → reply edge for the wait-for graph: while this fiber waits,
  // it depends on the server fiber of (pe, proc). The inner block_until
  // pushes its own (generic) wait scope; the deadlock detector scans
  // the stack outward and finds this one.
  const hb::CallWaitScope hb_scope(c.server.pe, c.server.process,
                                   "chant::Runtime RSR call wait",
                                   deadline_ns != lwt::kNoDeadline);
  try {
    if (!block_until(c.wait, deadline_ns)) {
      return StatusCode::DeadlineExceeded;
    }
    // A wire transport completes the receive with peer_gone when the
    // server's process is lost: no header landed and none ever will.
    if (c.wait.hdr.peer_gone) return StatusCode::PeerGone;
    if (!reply_parts_done(c)) {
      if (!block_until(c.tail_wait, deadline_ns)) {
        return StatusCode::DeadlineExceeded;
      }
      if (c.tail_wait.hdr.peer_gone) return StatusCode::PeerGone;
    }
  } catch (...) {
    // Cancelled mid-wait: withdraw any posted receives and retire the
    // record so later messages cannot scribble into dead buffers.
    abandon_call(c);
    throw;
  }
  return StatusCode::Ok;
}

std::vector<std::uint8_t> Runtime::call_wait(int handle) {
  validate::check_blocking("chant::Runtime::call_wait", /*timed=*/false);
  AsyncCall& c = checked_call(handle);
  const Status st = wait_call_until(c, lwt::kNoDeadline);
  if (st.code() == StatusCode::PeerGone) {
    // The untimed call has no Status channel: surface the dead server
    // as an exception after retiring the call record.
    abandon_call(c);
    throw std::runtime_error("chant: RSR server process gone");
  }
  if (!st.ok()) {
    // Unreachable: an unbounded wait either completes (Ok), throws
    // (cancellation), or is PeerGone (handled above). Guard the
    // invariant instead of dropping the Status.
    std::fprintf(stderr, "chant: call_wait without deadline returned %s\n",
                 st.message());
    std::abort();
  }
  return finish_call(c);
}

Status Runtime::call_wait(int handle, Deadline deadline,
                          std::vector<std::uint8_t>* reply_out) {
  AsyncCall& c = checked_call(handle);
  const Status st = wait_call_until(c, resolve_deadline(deadline));
  if (!st.ok()) {
    // PeerGone is terminal, not a timeout: don't count it as one.
    if (st.code() == StatusCode::DeadlineExceeded)
      ++rsr_stats_.deadline_timeouts;
    abandon_call(c);  // reclaims the slot; marks the seq dirty if needed
    return st;
  }
  std::vector<std::uint8_t> out = finish_call(c);
  if (reply_out != nullptr) *reply_out = std::move(out);
  return StatusCode::Ok;
}

std::vector<std::uint8_t> Runtime::call(int dst_pe, int dst_process,
                                        int handler, const void* arg,
                                        std::size_t len) {
  return call_wait(call_async(dst_pe, dst_process, handler, arg, len));
}

std::vector<std::uint8_t> Runtime::callv(int dst_pe, int dst_process,
                                         int handler, const nx::IoVec* iov,
                                         std::size_t iovcnt) {
  return call_wait(call_asyncv(dst_pe, dst_process, handler, iov, iovcnt));
}

Status Runtime::call(int dst_pe, int dst_process, int handler,
                     const void* arg, std::size_t len, Deadline deadline,
                     std::vector<std::uint8_t>* reply_out,
                     const RetryPolicy* retry) {
  const nx::IoVec iov{arg, len};
  return callv(dst_pe, dst_process, handler, &iov, len > 0 ? 1u : 0u,
               deadline, reply_out, retry);
}

Status Runtime::callv(int dst_pe, int dst_process, int handler,
                      const nx::IoVec* iov, std::size_t iovcnt,
                      Deadline deadline,
                      std::vector<std::uint8_t>* reply_out,
                      const RetryPolicy* retry) {
  RetryPolicy policy;  // default: single attempt
  if (retry != nullptr) {
    policy = *retry;
  } else {
    const auto it = retry_policies_.find(handler);
    if (it != retry_policies_.end()) policy = it->second;
  }
  if (policy.initial_backoff_ns == 0) policy.initial_backoff_ns = 1;
  if (policy.multiplier == 0) policy.multiplier = 1;

  const std::uint64_t overall = resolve_deadline(deadline);
  const int handle = call_asyncv_ex(dst_pe, dst_process, handler, iov,
                                    iovcnt, policy.retries());
  AsyncCall& c = checked_call(handle);
  std::uint64_t backoff = policy.initial_backoff_ns;
  int attempts = 1;
  for (;;) {
    // While no reply part has landed and resends remain, bound this wait
    // by the backoff window so a lost request or reply is retried; once
    // the reply header is in, resending could only produce duplicates.
    std::uint64_t att_deadline = overall;
    if (!c.wait.done && attempts < policy.max_attempts) {
      const std::uint64_t cand = sched_.deadline_after(backoff);
      if (cand < att_deadline) att_deadline = cand;
    }
    const Status st = wait_call_until(c, att_deadline);
    if (st.ok()) {
      if (attempts > 1) {
        // Extra attempts may yet produce replayed replies with this seq.
        note_stale_reply(c);
      }
      std::vector<std::uint8_t> out = finish_call(c);
      if (reply_out != nullptr) *reply_out = std::move(out);
      return StatusCode::Ok;
    }
    if (st.code() == StatusCode::PeerGone) {
      // The server's process is gone: resending can never help.
      abandon_call(c);
      return StatusCode::PeerGone;
    }
    if (c.wait.done || attempts >= policy.max_attempts ||
        sched_.now() >= overall) {
      ++rsr_stats_.deadline_timeouts;
      abandon_call(c);  // marks the seq dirty for any straggler replies
      return StatusCode::DeadlineExceeded;
    }
    send_rsr(c, handler, iov, iovcnt, attempts, /*retryable=*/true);
    ++rsr_stats_.retries_sent;
    ++attempts;
    const std::uint64_t grown = backoff * policy.multiplier;
    backoff = grown < backoff ? policy.max_backoff_ns  // overflow
                              : std::min(grown, policy.max_backoff_ns);
  }
}

void Runtime::set_retry_policy(int handler, const RetryPolicy& policy) {
  retry_policies_[handler] = policy;
}

void Runtime::post(int dst_pe, int dst_process, int handler, const void* arg,
                   std::size_t len) {
  if (len > cfg_.rsr_buffer_size) {
    throw std::invalid_argument("chant: RSR payload exceeds rsr_buffer_size");
  }
  const Gid me = self();
  wire::Rsr req;
  req.handler = handler;
  req.needs_reply = 0;
  req.from = me;
  const nx::IoVec iov[2] = {{&req, sizeof req}, {arg, len}};
  // Anonymous helper fibers may post (one-way needs no reply address).
  const int src_lid = me.thread >= 0 ? me.thread : kServerLid;
  send_from(src_lid, kTagRsr, iov, len > 0 ? 2u : 1u,
            Gid{dst_pe, dst_process, kServerLid}, /*internal=*/true);
}

}  // namespace chant
