// rsr.cpp — remote service requests (paper §3.2).
//
// Unannounced messages are received by a dedicated, priority-boosted
// *server thread* per process (paper Fig. 7). The server repeatedly
// blocks (under the normal polling policy) on a wildcard receive for
// RSR-tagged messages, dispatches the registered handler, and — unless
// the handler deferred the reply to a helper thread — sends the reply
// back to the requesting thread as an ordinary point-to-point message.
//
// Synchronous calls are built on the asynchronous machinery: call_async
// pre-posts the reply receive (tagged with a per-request sequence number
// so out-of-order replies pair correctly), ships the request, and hands
// back a handle; call_wait blocks under the configured polling policy.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "chant/runtime.hpp"
#include "wire.hpp"

namespace chant {

int Runtime::register_handler(Handler h) {
  handlers_.push_back(h);
  return static_cast<int>(handlers_.size()) - 1;
}

void Runtime::server_loop() {
  std::vector<std::uint8_t> buf(sizeof(wire::Rsr) + cfg_.rsr_buffer_size);
  while (!server_stop_) {
    const MsgInfo mi = recv_blocking(kTagRsr, buf.data(), buf.size(),
                                     kAnyThread, /*internal=*/true);
    if (mi.truncated || mi.len < sizeof(wire::Rsr)) {
      std::fprintf(stderr, "chant: malformed RSR (%zu bytes) dropped\n",
                   mi.len);
      continue;
    }
    wire::Rsr req;
    std::memcpy(&req, buf.data(), sizeof req);
    const std::uint8_t* body = buf.data() + sizeof req;
    const std::size_t body_len = mi.len - sizeof req;

    RsrContext ctx{req.from, req.needs_reply != 0, false, req.reply_seq};
    if (req.handler < 0 ||
        req.handler >= static_cast<int>(handlers_.size()) ||
        handlers_[static_cast<std::size_t>(req.handler)] == nullptr) {
      std::fprintf(stderr, "chant: RSR for unknown handler %d dropped\n",
                   req.handler);
      if (ctx.needs_reply) {
        wire::Status st{EINVAL};
        reply(ctx, &st, sizeof st);
      }
      continue;
    }
    std::vector<std::uint8_t> rep;
    if (cfg_.rsr_observer != nullptr) {
      cfg_.rsr_observer(cfg_.rsr_observer_ctx, req.handler, req.from.pe,
                        req.from.thread);
    }
    // Paper §3.2: on receipt of a request the server assumes a higher
    // priority so the dispatch (and its reply traffic) preempts queued
    // computation threads at every scheduling point it crosses.
    lwt::Tcb* me = lwt::Scheduler::self();
    const int base_prio = me->priority;
    if (cfg_.server_high_priority) {
      sched_.set_priority(me, lwt::kServerPriority);
    }
    handlers_[static_cast<std::size_t>(req.handler)](*this, ctx, body,
                                                     body_len, rep);
    if (ctx.needs_reply && !ctx.deferred) {
      reply(ctx, rep.data(), rep.size());
    }
    if (cfg_.server_high_priority &&
        cfg_.policy == PollPolicy::ThreadPolls) {
      sched_.set_priority(me, base_prio);
    }
  }
}

void Runtime::reply(const RsrContext& ctx, const void* data,
                    std::size_t len) {
  wire::Reply hdr;
  hdr.len = static_cast<std::uint32_t>(len);
  if (len <= wire::kInlineReply) {
    std::vector<std::uint8_t> msg(sizeof hdr + len);
    std::memcpy(msg.data(), &hdr, sizeof hdr);
    if (len > 0) std::memcpy(msg.data() + sizeof hdr, data, len);
    send_from(kServerLid, rsr_reply_tag(ctx.reply_seq), msg.data(),
              msg.size(), ctx.from, /*internal=*/true);
    return;
  }
  hdr.tail = 1;
  send_from(kServerLid, rsr_reply_tag(ctx.reply_seq), &hdr, sizeof hdr,
            ctx.from, /*internal=*/true);
  send_from(kServerLid, rsr_tail_tag(ctx.reply_seq), data, len, ctx.from,
            /*internal=*/true);
}

int Runtime::call_async(int dst_pe, int dst_process, int handler,
                        const void* arg, std::size_t len) {
  if (len > cfg_.rsr_buffer_size) {
    throw std::invalid_argument("chant: RSR payload exceeds rsr_buffer_size");
  }
  const Gid me = self();
  if (me.thread < 0) {
    throw std::logic_error("chant: RSR call from a fiber with no thread id");
  }
  // Allocate the async-call record and its reply sequence number.
  std::uint32_t idx;
  if (!free_calls_.empty()) {
    idx = free_calls_.back();
    free_calls_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(calls_.size());
    calls_.emplace_back();  // deque: existing records stay pinned
  }
  AsyncCall& c = calls_[idx];
  c.idx = idx;
  c.active = true;
  c.seq = next_reply_seq_;
  next_reply_seq_ = (next_reply_seq_ + 1) & 0xFFF;
  c.server = Gid{dst_pe, dst_process, kServerLid};
  c.rbuf.resize(sizeof(wire::Reply) + wire::kInlineReply);
  c.wait = WaitCtx{};
  c.wait.ep = &ep_;
  // Pre-post the reply receive (zero-copy path) before the request can
  // possibly be serviced.
  const TagCodec::Pattern pat = codec_.pattern(
      me.thread, kServerLid, rsr_reply_tag(c.seq), /*internal=*/true);
  c.wait.nxh = ep_.irecv(dst_pe, dst_process, pat.tag, pat.tag_mask,
                         c.rbuf.data(), c.rbuf.size(), pat.channel,
                         pat.channel_mask);

  wire::Rsr req;
  req.handler = handler;
  req.needs_reply = 1;
  req.reply_seq = c.seq;
  req.from = me;
  std::vector<std::uint8_t> msg(sizeof req + len);
  std::memcpy(msg.data(), &req, sizeof req);
  if (len > 0) std::memcpy(msg.data() + sizeof req, arg, len);
  send_from(me.thread, kTagRsr, msg.data(), msg.size(), c.server,
            /*internal=*/true);
  // 15 generation bits keep the packed handle non-negative; the
  // comparison below masks identically so slot reuse wraps safely.
  return static_cast<int>(((c.gen & 0x7FFFu) << 16) | idx);
}

Runtime::AsyncCall& Runtime::checked_call(int handle) {
  const auto idx = static_cast<std::uint32_t>(handle) & 0xFFFFu;
  const auto gen = static_cast<std::uint32_t>(handle) >> 16;
  if (idx >= calls_.size() || (calls_[idx].gen & 0x7FFFu) != gen ||
      !calls_[idx].active) {
    throw std::invalid_argument("chant: stale or invalid RSR handle");
  }
  return calls_[idx];
}

std::vector<std::uint8_t> Runtime::finish_call(AsyncCall& c) {
  wire::Reply rep;
  std::memcpy(&rep, c.rbuf.data(), sizeof rep);
  std::vector<std::uint8_t> out(rep.len);
  if (rep.tail == 0) {
    if (rep.len > 0) {
      std::memcpy(out.data(), c.rbuf.data() + sizeof rep, rep.len);
    }
  } else {
    // Large reply: the payload follows as its own (ordered) message.
    const MsgInfo mi = recv_blocking(rsr_tail_tag(c.seq), out.data(),
                                     out.size(), c.server, /*internal=*/true);
    if (mi.len != rep.len) {
      throw std::runtime_error("chant: RSR tail length mismatch");
    }
  }
  c.active = false;
  ++c.gen;
  c.rbuf.clear();
  c.rbuf.shrink_to_fit();
  free_calls_.push_back(c.idx);
  return out;
}

bool Runtime::call_test(int handle, std::vector<std::uint8_t>* reply_out) {
  AsyncCall& c = checked_call(handle);
  if (!wait_test(&c.wait)) return false;
  std::vector<std::uint8_t> out = finish_call(c);
  if (reply_out != nullptr) *reply_out = std::move(out);
  return true;
}

std::vector<std::uint8_t> Runtime::call_wait(int handle) {
  AsyncCall& c = checked_call(handle);
  try {
    block_until(c.wait);
  } catch (...) {
    if (!c.wait.done) {
      ep_.cancel_recv(c.wait.nxh);
      c.active = false;
      ++c.gen;
      free_calls_.push_back(c.idx);
    }
    throw;
  }
  return finish_call(c);
}

std::vector<std::uint8_t> Runtime::call(int dst_pe, int dst_process,
                                        int handler, const void* arg,
                                        std::size_t len) {
  return call_wait(call_async(dst_pe, dst_process, handler, arg, len));
}

void Runtime::post(int dst_pe, int dst_process, int handler, const void* arg,
                   std::size_t len) {
  if (len > cfg_.rsr_buffer_size) {
    throw std::invalid_argument("chant: RSR payload exceeds rsr_buffer_size");
  }
  const Gid me = self();
  wire::Rsr req;
  req.handler = handler;
  req.needs_reply = 0;
  req.from = me;
  std::vector<std::uint8_t> msg(sizeof req + len);
  std::memcpy(msg.data(), &req, sizeof req);
  if (len > 0) std::memcpy(msg.data() + sizeof req, arg, len);
  // Anonymous helper fibers may post (one-way needs no reply address).
  const int src_lid = me.thread >= 0 ? me.thread : kServerLid;
  send_from(src_lid, kTagRsr, msg.data(), msg.size(),
            Gid{dst_pe, dst_process, kServerLid}, /*internal=*/true);
}

}  // namespace chant
