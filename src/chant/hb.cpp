// hb.cpp — the vector-clock happens-before checker (chant/hb.hpp,
// DESIGN.md §14).
//
// One global State guarded by one recursive mutex: hook sites across
// every scheduler of the (in-process) world serialize here. That is
// deliberate — the checker runs under sim (one worker per scheduler),
// where contention is zero and total ordering of bookkeeping is what
// makes the quiescence protocol sound. Lock discipline: the State mutex
// is a leaf except for the report sink; no code holding it ever calls
// back into a Scheduler (recovery cancels are issued after unlocking),
// so hook sites may be invoked while a scheduler's wait lock is held.
#include "chant/hb.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lwt/hb.hpp"
#include "lwt/scheduler.hpp"
#include "lwt/thread.hpp"
#include "nx/endpoint.hpp"
#include "nx/hb.hpp"

namespace chant::hb {

std::atomic<bool> g_enabled{false};

namespace {

// ---------------------------------------------------------- vector clocks

/// Sparse vector clock: checker-assigned fiber id → event counter.
/// Sparse because fibers come and go (Tcb pointers are recycled; the
/// checker's ids are never reused within a run).
using VClock = std::unordered_map<std::uint64_t, std::uint64_t>;

/// Idle passes every scheduler must complete, with no checker-visible
/// event in between, before the world counts as quiesced. Each pass
/// includes one full poll round (wq_scan / PS tests / timer expiry), so
/// three event-free passes mean no parked predicate can still flip.
constexpr unsigned kStableRounds = 3;

void vc_merge(VClock& into, const VClock& from) {
  for (const auto& [id, clk] : from) {
    auto& slot = into[id];
    if (clk > slot) slot = clk;
  }
}

// ------------------------------------------------------------------ state

/// One entry of a fiber's wait stack (innermost wait is back()). An RSR
/// call wait targets (call_pe, call_proc); every other wait is keyed by
/// the object it parks on (lock / condvar / joinee / null).
struct Wait {
  const void* obj = nullptr;
  const char* what = "";
  bool timed = false;
  int call_pe = -1;
  int call_proc = -1;
};

struct Fiber {
  std::uint64_t id = 0;  ///< checker id (never reused, unlike Tcb*)
  VClock vc;
  std::vector<Wait> waits;
};

/// One recorded access to a tracked region.
struct Access {
  std::uint64_t fiber = 0;  ///< checker fiber id
  std::uint64_t clk = 0;    ///< accessor's own clock component
  const char* site = "";
  std::string who;          ///< "#id 'name'" at access time
};

struct Region {
  std::uintptr_t lo = 0;
  std::uintptr_t hi = 0;
  const char* name = "";
  bool has_write = false;
  Access write;
  std::vector<Access> reads;
  bool reported = false;  ///< one report per region per reset
};

struct Token {
  VClock vc;            ///< sender's clock at submit
  bool pending = true;  ///< not yet arrived at the destination endpoint
};

struct SchedState {
  bool idle = false;
  std::uint64_t timers = 0;
  int pe = -1;
  int proc = -1;
  std::uint64_t seen_gen = 0;  ///< event_gen at this sched's last idle pass
  unsigned stable = 0;         ///< consecutive idle passes at seen_gen
  unsigned suppressed = 0;     ///< local-abort holds granted at seen_gen
};

struct State {
  std::recursive_mutex mu;
  std::uint64_t next_fiber = 1;
  std::uint64_t next_token = 1;
  std::unordered_map<lwt::Tcb*, Fiber> fibers;
  std::unordered_map<const void*, VClock> syncs;  ///< locks, cvs, sems, ...
  std::unordered_map<const void*, std::vector<lwt::Tcb*>> owners;
  std::unordered_map<const void*, const char*> lock_kind;
  std::unordered_map<std::uint64_t, Token> tokens;
  std::uint64_t inflight = 0;
  /// Bumped on every checker-visible sign of life (a fiber scheduled, a
  /// message arriving). Quiescence needs every scheduler to complete
  /// several full idle passes — each one includes a poll round over its
  /// parked predicates — with this counter unchanged, which closes the
  /// window between "message visible at the endpoint" and "the blocked
  /// fiber's next predicate test consumes it".
  std::uint64_t event_gen = 1;
  VClock gsync;      ///< transport scratch/barrier ordering
  VClock pool_sync;  ///< BufferPool recycle ordering
  std::vector<Region> regions;
  std::unordered_map<lwt::Scheduler*, SchedState> scheds;
  std::map<std::pair<int, int>, lwt::Tcb*> servers;
  unsigned expected = 0;
  unsigned registered = 0;
  bool reported = false;  ///< one stuck-world diagnosis per world
  std::uint64_t counts[kNumViolations] = {};
  Sink sink = nullptr;  ///< null = default stderr sink
};

State& state() {
  static State st;
  return st;
}

using Guard = std::lock_guard<std::recursive_mutex>;

Fiber& fiber_of(State& st, lwt::Tcb* t) {
  auto [it, fresh] = st.fibers.try_emplace(t);
  Fiber& f = it->second;
  if (fresh) {
    f.id = st.next_fiber++;
    f.vc[f.id] = 1;
  }
  return f;
}

void tick(Fiber& f) { ++f.vc[f.id]; }

std::string describe(const State& st, lwt::Tcb* t) {
  const Fiber* f = nullptr;
  if (auto it = st.fibers.find(t); it != st.fibers.end()) f = &it->second;
  char buf[96];
  int pe = -1;
  int proc = -1;
  if (t->sched != nullptr) {
    if (auto it = st.scheds.find(t->sched); it != st.scheds.end()) {
      pe = it->second.pe;
      proc = it->second.proc;
    }
  }
  if (pe >= 0) {
    std::snprintf(buf, sizeof buf, "fiber #%u '%s' (pe %d proc %d)", t->id,
                  t->name, pe, proc);
  } else {
    std::snprintf(buf, sizeof buf, "fiber #%u '%s'", t->id, t->name);
  }
  (void)f;
  return buf;
}

void default_sink(const Report& r) {
  std::fprintf(stderr, "%s\n", r.message);
  // Under the sim harness these env vars pin the failing interleaving;
  // echoing them makes any captured log a one-line repro.
  const char* seed = std::getenv("CHANT_SIM_SEED");
  const char* trace = std::getenv("CHANT_SIM_TRACE");
  if (seed != nullptr || trace != nullptr) {
    std::fprintf(stderr, "chant::hb: reproduce with%s%s%s%s\n",
                 seed != nullptr ? " CHANT_SIM_SEED=" : "",
                 seed != nullptr ? seed : "",
                 trace != nullptr ? " CHANT_SIM_TRACE=" : "",
                 trace != nullptr ? trace : "");
  }
}

/// Count the violation and deliver the report. Caller holds the State
/// mutex (recursive, so a sink reading violation_count() is fine).
void emit(State& st, Violation kind, const std::string& message) {
  ++st.counts[static_cast<int>(kind)];
  Report r{kind, message.c_str()};
  (st.sink != nullptr ? st.sink : &default_sink)(r);
}

// ----------------------------------------------------------- race checks

bool ordered_before(const Access& a, const Fiber& f) {
  auto it = f.vc.find(a.fiber);
  return it != f.vc.end() && a.clk <= it->second;
}

Access make_access(const State& st, const Fiber& f, lwt::Tcb* t,
                   const char* site) {
  Access a;
  a.fiber = f.id;
  a.clk = f.vc.at(f.id);
  a.site = site;
  a.who = describe(st, t);
  return a;
}

void report_race(State& st, Region& rg, const char* verb, const Access& prev,
                 const char* prev_verb, const Access& cur) {
  if (rg.reported) return;
  rg.reported = true;
  std::string m = "chant::hb: DATA RACE on region '";
  m += rg.name;
  m += "'\n  ";
  m += verb;
  m += " by ";
  m += cur.who;
  m += " at ";
  m += cur.site;
  m += "\n  is unordered with earlier ";
  m += prev_verb;
  m += " by ";
  m += prev.who;
  m += " at ";
  m += prev.site;
  emit(st, Violation::kDataRace, m);
}

void region_write(State& st, Region& rg, Fiber& f, lwt::Tcb* t,
                  const char* site) {
  Access cur = make_access(st, f, t, site);
  if (rg.has_write && !ordered_before(rg.write, f)) {
    report_race(st, rg, "write", rg.write, "write", cur);
  }
  for (const Access& rd : rg.reads) {
    if (!ordered_before(rd, f)) report_race(st, rg, "write", rd, "read", cur);
  }
  rg.write = std::move(cur);
  rg.has_write = true;
  rg.reads.clear();
}

void region_read(State& st, Region& rg, Fiber& f, lwt::Tcb* t,
                 const char* site) {
  Access cur = make_access(st, f, t, site);
  if (rg.has_write && !ordered_before(rg.write, f)) {
    report_race(st, rg, "read", rg.write, "write", cur);
  }
  for (Access& rd : rg.reads) {
    if (rd.fiber == f.id) {
      rd = std::move(cur);
      return;
    }
  }
  rg.reads.push_back(std::move(cur));
}

template <typename Fn>
void for_overlapping(State& st, const void* ptr, std::size_t len, Fn&& fn) {
  const auto lo = reinterpret_cast<std::uintptr_t>(ptr);
  const auto hi = lo + len;
  for (Region& rg : st.regions) {
    if (lo < rg.hi && rg.lo < hi) fn(rg);
  }
}

// ------------------------------------------------------------- lwt hooks

void hook_thread_spawn(lwt::Tcb* parent, lwt::Tcb* child) {
  State& st = state();
  Guard g(st.mu);
  st.fibers.erase(child);  // Tcb pointers are recycled; checker ids aren't
  Fiber& c = fiber_of(st, child);
  if (parent != nullptr) {
    Fiber& p = fiber_of(st, parent);
    vc_merge(c.vc, p.vc);
    tick(p);
  }
}

void hook_thread_exit(lwt::Tcb* t, bool detached) {
  State& st = state();
  Guard g(st.mu);
  auto it = st.fibers.find(t);
  if (it == st.fibers.end()) return;
  it->second.waits.clear();
  for (auto& [obj, v] : st.owners) {
    (void)obj;
    v.erase(std::remove(v.begin(), v.end(), t), v.end());
  }
  // A joinable fiber's clock survives until thread_join merges it; a
  // detached one can never be joined, so drop it now (the Tcb pointer
  // may be recycled, but hook_thread_spawn resets the entry anyway).
  if (detached) st.fibers.erase(it);
}

void hook_thread_join(lwt::Tcb* joiner, lwt::Tcb* joinee) {
  State& st = state();
  Guard g(st.mu);
  auto it = st.fibers.find(joinee);
  if (it == st.fibers.end()) return;
  Fiber& j = fiber_of(st, joiner);
  vc_merge(j.vc, it->second.vc);
  st.fibers.erase(joinee);
}

void hook_lock_acquired(lwt::Tcb* t, const void* obj, const char* kind) {
  if (t == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  Fiber& f = fiber_of(st, t);
  vc_merge(f.vc, st.syncs[obj]);
  st.owners[obj].push_back(t);
  st.lock_kind[obj] = kind;
}

void hook_lock_released(lwt::Tcb* t, const void* obj) {
  if (t == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  Fiber& f = fiber_of(st, t);
  auto& v = st.owners[obj];
  auto it = std::find(v.begin(), v.end(), t);
  if (it != v.end()) v.erase(it);
  vc_merge(st.syncs[obj], f.vc);
  tick(f);
}

void hook_sync_release(lwt::Tcb* t, const void* obj) {
  if (t == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  Fiber& f = fiber_of(st, t);
  vc_merge(st.syncs[obj], f.vc);
  tick(f);
}

void hook_sync_acquire(lwt::Tcb* t, const void* obj) {
  if (t == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  Fiber& f = fiber_of(st, t);
  vc_merge(f.vc, st.syncs[obj]);
}

void hook_wait_begin(lwt::Tcb* t, const void* obj, const char* what,
                     bool timed) {
  if (t == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  fiber_of(st, t).waits.push_back(Wait{obj, what, timed, -1, -1});
}

void hook_wait_end(lwt::Tcb* t) {
  if (t == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  auto it = st.fibers.find(t);
  if (it != st.fibers.end() && !it->second.waits.empty()) {
    it->second.waits.pop_back();
  }
}

void hook_progress(lwt::Scheduler* s) {
  State& st = state();
  Guard g(st.mu);
  st.scheds[s].idle = false;
  ++st.event_gen;
}

/// The stuck-world diagnosis. All schedulers idle, nothing in flight,
/// no armed timer anywhere, every runtime registered: any fiber inside
/// an unbounded instrumented wait can never be woken. Classify via the
/// wait-for graph (cycle = deadlock, rest = lost wakeup), report once,
/// then cancel the stuck fibers so the world can unwind and the sim
/// iteration can fail cleanly instead of hanging.
bool hook_quiesce(lwt::Scheduler* s, std::uint64_t timers_live,
                  std::uint64_t generic_len, bool locally_dead) {
  (void)generic_len;  // termination-protocol waits poll; they don't pin us
  State& st = state();
  std::vector<lwt::Tcb*> victims;
  {
    Guard g(st.mu);
    auto& ss = st.scheds[s];
    ss.idle = true;
    ss.timers = timers_live;
    if (ss.seen_gen != st.event_gen) {
      ss.seen_gen = st.event_gen;
      ss.stable = 1;
      ss.suppressed = 0;
    } else if (ss.stable < kStableRounds) {
      ++ss.stable;
    }
    if (st.reported) return false;
    if (st.expected == 0 || st.registered != st.expected) return false;
    // The scheduler's own whole-process deadlock abort would fire on the
    // FIRST idle pass, but our diagnosis needs kStableRounds of them (and
    // possibly peers still draining). While the world is under check,
    // claim the pass so the caller holds its abort — bounded, so a world
    // that never converges (a peer busy-looping forever) still dies with
    // the scheduler's own diagnostics instead of spinning silently.
    const bool suppress =
        locally_dead && ss.suppressed < 1'000'000u && ++ss.suppressed != 0;
    if (st.inflight != 0) return suppress;
    for (const auto& [sp, s2] : st.scheds) {
      (void)sp;
      if (!s2.idle || s2.timers != 0) return suppress;
      if (s2.seen_gen != st.event_gen || s2.stable < kStableRounds) {
        return suppress;
      }
    }

    struct Node {
      lwt::Tcb* t;
      const Fiber* f;
      const Wait* w;  ///< the wait shown in reports / yielding the edges
      std::vector<lwt::Tcb*> out;
      int color = 0;    // 0 white, 1 on stack, 2 done
      bool cyclic = false;
      bool reaches = false;
    };
    std::vector<Node> nodes;
    std::unordered_map<lwt::Tcb*, std::size_t> index;
    for (auto& [t, f] : st.fibers) {
      if (f.waits.empty() || f.waits.back().timed) continue;
      index.emplace(t, nodes.size());
      nodes.push_back(Node{t, &f, &f.waits.back(), {}, 0, false, false});
    }
    if (nodes.empty()) return false;

    // Wait-for edges. A blocked site can nest (an RSR call wait parks
    // through a generic message wait), so scan the wait stack from the
    // innermost entry outward and take the first one with a resolvable
    // target: RSR call → server fiber, owned lock → its owners, joinee
    // fiber → itself. Waits with no target (condvar, semaphore, plain
    // receive) leave the node edgeless — a lost-wakeup candidate.
    for (Node& n : nodes) {
      for (auto rit = n.f->waits.rbegin(); rit != n.f->waits.rend(); ++rit) {
        const Wait& w = *rit;
        std::vector<lwt::Tcb*> out;
        if (w.call_pe >= 0) {
          auto it = st.servers.find({w.call_pe, w.call_proc});
          if (it != st.servers.end()) out.push_back(it->second);
        } else if (w.obj != nullptr) {
          auto ow = st.owners.find(w.obj);
          if (ow != st.owners.end() && !ow->second.empty()) {
            out = ow->second;
          } else {
            auto* joinee = static_cast<lwt::Tcb*>(const_cast<void*>(w.obj));
            if (st.fibers.count(joinee) != 0) out.push_back(joinee);
          }
        }
        if (!out.empty()) {
          n.out = std::move(out);
          n.w = &w;
          break;
        }
      }
    }

    // Cycle detection (iterative DFS over stuck nodes; edges to
    // non-stuck fibers are dangling and cannot close a cycle).
    std::vector<std::vector<std::size_t>> cycles;
    std::vector<std::size_t> stack;
    for (std::size_t root = 0; root < nodes.size(); ++root) {
      if (nodes[root].color != 0) continue;
      struct Frame {
        std::size_t n;
        std::size_t edge = 0;
      };
      std::vector<Frame> frames{{root, 0}};
      nodes[root].color = 1;
      stack.push_back(root);
      while (!frames.empty()) {
        Frame& fr = frames.back();
        Node& n = nodes[fr.n];
        if (fr.edge < n.out.size()) {
          lwt::Tcb* tgt = n.out[fr.edge++];
          auto it = index.find(tgt);
          if (it == index.end()) continue;
          const std::size_t v = it->second;
          if (nodes[v].color == 0) {
            nodes[v].color = 1;
            stack.push_back(v);
            frames.push_back({v, 0});
          } else if (nodes[v].color == 1) {
            // Back edge: everything from v to the top of the stack is
            // one cycle.
            auto pos = std::find(stack.begin(), stack.end(), v);
            std::vector<std::size_t> cyc(pos, stack.end());
            bool fresh = false;
            for (std::size_t m : cyc) {
              if (!nodes[m].cyclic) fresh = true;
              nodes[m].cyclic = true;
            }
            if (fresh) cycles.push_back(std::move(cyc));
          }
        } else {
          nodes[fr.n].color = 2;
          stack.pop_back();
          frames.pop_back();
        }
      }
    }

    // A stuck fiber that can reach a cycle is a deadlock victim, not a
    // lost wakeup. Small n: iterate to fixpoint.
    for (bool changed = true; changed;) {
      changed = false;
      for (Node& n : nodes) {
        if (n.cyclic || n.reaches) continue;
        for (lwt::Tcb* tgt : n.out) {
          auto it = index.find(tgt);
          if (it == index.end()) continue;
          const Node& m = nodes[it->second];
          if (m.cyclic || m.reaches) {
            n.reaches = true;
            changed = true;
            break;
          }
        }
      }
    }

    st.reported = true;
    for (const auto& cyc : cycles) {
      std::string m = "chant::hb: DEADLOCK — wait-for cycle of " +
                      std::to_string(cyc.size()) + " fiber(s):";
      for (std::size_t ni : cyc) {
        const Node& n = nodes[ni];
        m += "\n  " + describe(st, n.t) + " blocked at " + n.w->what;
        if (n.w->call_pe >= 0) {
          m += " → server (pe " + std::to_string(n.w->call_pe) + " proc " +
               std::to_string(n.w->call_proc) + ")";
        } else if (n.w->obj != nullptr) {
          auto kit = st.lock_kind.find(n.w->obj);
          char addr[32];
          std::snprintf(addr, sizeof addr, "%p", n.w->obj);
          m += std::string(" on ") +
               (kit != st.lock_kind.end() ? kit->second : "object") + " " +
               addr;
          auto ow = st.owners.find(n.w->obj);
          if (ow != st.owners.end() && !ow->second.empty()) {
            m += " held by " + describe(st, ow->second.front());
          }
        }
      }
      emit(st, Violation::kDeadlock, m);
    }
    std::string lost;
    std::size_t nlost = 0;
    for (const Node& n : nodes) {
      if (n.cyclic || n.reaches) continue;
      ++nlost;
      lost += "\n  " + describe(st, n.t) + " blocked at " + n.w->what +
              " with no armed timer, in-flight message or runnable fiber "
              "left to wake it";
    }
    if (nlost != 0) {
      std::string m =
          "chant::hb: LOST WAKEUP — " + std::to_string(nlost) +
          " fiber(s) still blocked after the world quiesced:" + lost;
      for (std::size_t i = 0; i < nlost; ++i) {
        // one count per stranded fiber; the report is combined
        ++st.counts[static_cast<int>(Violation::kLostWakeup)];
      }
      --st.counts[static_cast<int>(Violation::kLostWakeup)];  // emit adds 1
      emit(st, Violation::kLostWakeup, m);
    }

    for (Node& n : nodes) {
      victims.push_back(n.t);
      auto it = st.fibers.find(n.t);
      if (it != st.fibers.end()) it->second.waits.clear();
    }
    // Everyone re-announces idleness before the next diagnosis pass.
    ++st.event_gen;
    for (auto& [sp, s2] : st.scheds) {
      (void)sp;
      s2.idle = false;
      s2.stable = 0;
    }
  }
  // Recovery outside the State mutex: cancel takes scheduler locks.
  for (lwt::Tcb* t : victims) {
    if (t->sched != nullptr) t->sched->cancel(t);
  }
  return true;
}

constexpr lwt::HbHooks kLwtHooks = {
    &hook_thread_spawn, &hook_thread_exit,  &hook_thread_join,
    &hook_lock_acquired, &hook_lock_released, &hook_sync_release,
    &hook_sync_acquire, &hook_wait_begin,   &hook_wait_end,
    &hook_quiesce,      &hook_progress,
};

// -------------------------------------------------------------- nx hooks

std::uint64_t hook_msg_send(const nx::MsgHeader& h) {
  (void)h;
  State& st = state();
  Guard g(st.mu);
  const std::uint64_t tok = st.next_token++;
  Token& ti = st.tokens[tok];
  if (lwt::Tcb* t = lwt::Scheduler::self()) {
    Fiber& f = fiber_of(st, t);
    ti.vc = f.vc;
    tick(f);
  }
  ++st.inflight;
  return tok;
}

void hook_msg_arrived(std::uint64_t token) {
  if (token == 0) return;
  State& st = state();
  Guard g(st.mu);
  auto it = st.tokens.find(token);
  if (it == st.tokens.end() || !it->second.pending) return;  // duplicate
  it->second.pending = false;
  --st.inflight;
  // The arrival may unblock a receive on some scheduler we cannot name
  // from here: force every scheduler back through fresh idle passes
  // before quiescence can be declared again.
  ++st.event_gen;
  for (auto& [sp, s2] : st.scheds) {
    (void)sp;
    s2.idle = false;
  }
}

void hook_msg_dropped(std::uint64_t token) {
  if (token == 0) return;
  State& st = state();
  Guard g(st.mu);
  auto it = st.tokens.find(token);
  if (it == st.tokens.end()) return;
  if (it->second.pending) --st.inflight;
  st.tokens.erase(it);
}

constexpr nx::NxHbHooks kNxHooks = {
    &hook_msg_send,
    &hook_msg_arrived,
    &hook_msg_dropped,
};

}  // namespace

// ----------------------------------------------------------- public API

const char* to_string(Violation v) noexcept {
  switch (v) {
    case Violation::kDataRace: return "data-race";
    case Violation::kDeadlock: return "deadlock";
    case Violation::kLostWakeup: return "lost-wakeup";
    case Violation::kNumViolations: break;
  }
  return "?";
}

void enable() {
  lwt::g_hb_hooks.store(&kLwtHooks, std::memory_order_release);
  nx::g_nx_hb_hooks.store(&kNxHooks, std::memory_order_release);
  g_enabled.store(true, std::memory_order_release);
}

void disable() {
  g_enabled.store(false, std::memory_order_release);
  lwt::g_hb_hooks.store(nullptr, std::memory_order_release);
  nx::g_nx_hb_hooks.store(nullptr, std::memory_order_release);
}

void enable_from_env() {
  const char* e = std::getenv("CHANT_HB");
  if (e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0) enable();
}

void reset() {
  State& st = state();
  Guard g(st.mu);
  st.fibers.clear();
  st.syncs.clear();
  st.owners.clear();
  st.lock_kind.clear();
  st.tokens.clear();
  st.inflight = 0;
  st.gsync.clear();
  st.pool_sync.clear();
  st.regions.clear();
  st.scheds.clear();
  st.servers.clear();
  st.expected = 0;
  st.registered = 0;
  st.reported = false;
  for (auto& c : st.counts) c = 0;
}

void set_sink(Sink sink) {
  State& st = state();
  Guard g(st.mu);
  st.sink = sink;
}

std::uint64_t violation_count() {
  State& st = state();
  Guard g(st.mu);
  std::uint64_t n = 0;
  for (auto c : st.counts) n += c;
  return n;
}

std::uint64_t violation_count(Violation v) {
  State& st = state();
  Guard g(st.mu);
  return st.counts[static_cast<int>(v)];
}

void track(const void* ptr, std::size_t len, const char* name) {
  if (!enabled()) return;
  State& st = state();
  Guard g(st.mu);
  Region rg;
  rg.lo = reinterpret_cast<std::uintptr_t>(ptr);
  rg.hi = rg.lo + len;
  rg.name = name;
  st.regions.push_back(std::move(rg));
}

void untrack(const void* ptr) {
  if (!enabled()) return;
  State& st = state();
  Guard g(st.mu);
  const auto lo = reinterpret_cast<std::uintptr_t>(ptr);
  st.regions.erase(std::remove_if(st.regions.begin(), st.regions.end(),
                                  [lo](const Region& r) { return r.lo == lo; }),
                   st.regions.end());
}

void on_read(const void* ptr, std::size_t len, const char* site) {
  if (!enabled()) return;
  lwt::Tcb* t = lwt::Scheduler::self();
  if (t == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  Fiber& f = fiber_of(st, t);
  for_overlapping(st, ptr, len,
                  [&](Region& rg) { region_read(st, rg, f, t, site); });
}

void on_write(const void* ptr, std::size_t len, const char* site) {
  if (!enabled()) return;
  lwt::Tcb* t = lwt::Scheduler::self();
  if (t == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  Fiber& f = fiber_of(st, t);
  for_overlapping(st, ptr, len,
                  [&](Region& rg) { region_write(st, rg, f, t, site); });
}

void world_begin(unsigned processes) {
  if (!enabled()) return;
  State& st = state();
  Guard g(st.mu);
  // World-scoped liveness state restarts; violation counters and the
  // sink survive so a test can sum across nested runs.
  st.fibers.clear();
  st.syncs.clear();
  st.owners.clear();
  st.lock_kind.clear();
  st.tokens.clear();
  st.inflight = 0;
  st.gsync.clear();
  st.pool_sync.clear();
  st.regions.clear();
  st.scheds.clear();
  st.servers.clear();
  st.expected = processes;
  st.registered = 0;
  st.reported = false;
}

void runtime_started(lwt::Scheduler* sched, int pe, int proc) {
  if (!enabled()) return;
  State& st = state();
  Guard g(st.mu);
  SchedState& ss = st.scheds[sched];
  ss.idle = false;
  ss.timers = 0;
  ss.pe = pe;
  ss.proc = proc;
  ++st.registered;
}

void runtime_stopped(lwt::Scheduler* sched) {
  if (!enabled()) return;
  State& st = state();
  Guard g(st.mu);
  auto it = st.scheds.find(sched);
  if (it == st.scheds.end()) return;
  st.servers.erase({it->second.pe, it->second.proc});
  st.scheds.erase(it);
  if (st.registered > 0) --st.registered;
}

void server_started(int pe, int proc, lwt::Tcb* tcb) {
  if (!enabled()) return;
  State& st = state();
  Guard g(st.mu);
  st.servers[{pe, proc}] = tcb;
}

void msg_delivered(std::uint64_t token) {
  if (!enabled() || token == 0) return;
  lwt::Tcb* t = lwt::Scheduler::self();
  State& st = state();
  Guard g(st.mu);
  auto it = st.tokens.find(token);
  if (it == st.tokens.end()) return;
  if (t != nullptr) vc_merge(fiber_of(st, t).vc, it->second.vc);
  // Kept (not erased) until world_begin/reset: an injected duplicate
  // delivers the same token to a second receive and still needs the
  // sender's clock for its merge.
}

void global_sync() {
  if (!enabled()) return;
  lwt::Tcb* t = lwt::Scheduler::self();
  if (t == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  Fiber& f = fiber_of(st, t);
  vc_merge(f.vc, st.gsync);
  vc_merge(st.gsync, f.vc);
  tick(f);
}

void pool_acquired(const void* base, std::size_t len) {
  if (!enabled()) return;
  lwt::Tcb* t = lwt::Scheduler::self();
  if (t == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  Fiber& f = fiber_of(st, t);
  // Pool operations are ordered through the pool itself (they run on
  // one scheduler), so claim writes never race with each other — only
  // with stale accesses from fibers that kept a pointer past release.
  vc_merge(f.vc, st.pool_sync);
  vc_merge(st.pool_sync, f.vc);
  tick(f);
  const auto lo = reinterpret_cast<std::uintptr_t>(base);
  for (Region& rg : st.regions) {
    if (rg.lo == lo) {
      rg.hi = lo + len;
      region_write(st, rg, f, t, "BufferPool::acquire (block recycled)");
      return;
    }
  }
  Region rg;
  rg.lo = lo;
  rg.hi = lo + len;
  rg.name = "BufferPool block";
  st.regions.push_back(std::move(rg));
  region_write(st, st.regions.back(), f, t, "BufferPool::acquire");
}

void pool_released(const void* base) {
  if (!enabled()) return;
  lwt::Tcb* t = lwt::Scheduler::self();
  if (t == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  Fiber& f = fiber_of(st, t);
  vc_merge(f.vc, st.pool_sync);
  vc_merge(st.pool_sync, f.vc);
  tick(f);
  const auto lo = reinterpret_cast<std::uintptr_t>(base);
  for (Region& rg : st.regions) {
    if (rg.lo == lo) {
      region_write(st, rg, f, t, "BufferPool::release");
      return;
    }
  }
}

WaitScope::WaitScope(const void* obj, const char* what, bool timed)
    : tcb_(nullptr) {
  if (!enabled()) return;
  tcb_ = lwt::Scheduler::self();
  if (tcb_ == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  fiber_of(st, tcb_).waits.push_back(Wait{obj, what, timed, -1, -1});
}

WaitScope::~WaitScope() {
  if (tcb_ == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  auto it = st.fibers.find(tcb_);
  if (it != st.fibers.end() && !it->second.waits.empty()) {
    it->second.waits.pop_back();
  }
}

CallWaitScope::CallWaitScope(int pe, int proc, const char* what, bool timed)
    : tcb_(nullptr) {
  if (!enabled()) return;
  tcb_ = lwt::Scheduler::self();
  if (tcb_ == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  fiber_of(st, tcb_).waits.push_back(Wait{nullptr, what, timed, pe, proc});
}

CallWaitScope::~CallWaitScope() {
  if (tcb_ == nullptr) return;
  State& st = state();
  Guard g(st.mu);
  auto it = st.fibers.find(tcb_);
  if (it != st.fibers.end() && !it->second.waits.empty()) {
    it->second.waits.pop_back();
  }
}

}  // namespace chant::hb
