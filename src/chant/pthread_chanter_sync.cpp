// pthread_chanter_sync.cpp — attributes, mutexes, condition variables,
// thread-local data and once-init for the Appendix-A C interface.
#include "chant/pthread_chanter_sync.h"

#include <cerrno>
#include <new>

#include "chant/pthread_chanter.h"
#include "chant/runtime.hpp"
#include "lwt/lwt.hpp"

namespace {

lwt::Scheduler* sched_or_null() {
  chant::Runtime* rt = chant::Runtime::current();
  return rt != nullptr ? &rt->scheduler() : lwt::Scheduler::current();
}

lwt::Mutex* mu(pthread_chanter_mutex_t* m) {
  return m != nullptr ? static_cast<lwt::Mutex*>(m->impl) : nullptr;
}
lwt::CondVar* cv(pthread_chanter_cond_t* c) {
  return c != nullptr ? static_cast<lwt::CondVar*>(c->impl) : nullptr;
}

}  // namespace

extern "C" {

// ------------------------------------------------------------- attributes

int pthread_chanter_attr_init(pthread_chanter_attr_t* attr) {
  if (attr == nullptr) return EINVAL;
  attr->stack_size = 0;  // runtime default
  attr->priority = lwt::kDefaultPriority;
  attr->detached = 0;
  return 0;
}

int pthread_chanter_attr_destroy(pthread_chanter_attr_t* attr) {
  return attr == nullptr ? EINVAL : 0;
}

int pthread_chanter_attr_setstacksize(pthread_chanter_attr_t* attr,
                                      size_t stack_size) {
  if (attr == nullptr) return EINVAL;
  attr->stack_size = stack_size;
  return 0;
}

int pthread_chanter_attr_getstacksize(const pthread_chanter_attr_t* attr,
                                      size_t* stack_size) {
  if (attr == nullptr || stack_size == nullptr) return EINVAL;
  *stack_size = attr->stack_size;
  return 0;
}

int pthread_chanter_attr_setprio(pthread_chanter_attr_t* attr, int priority) {
  if (attr == nullptr || priority < 0 || priority >= lwt::kNumPriorities) {
    return EINVAL;
  }
  attr->priority = priority;
  return 0;
}

int pthread_chanter_attr_getprio(const pthread_chanter_attr_t* attr,
                                 int* priority) {
  if (attr == nullptr || priority == nullptr) return EINVAL;
  *priority = attr->priority;
  return 0;
}

int pthread_chanter_attr_setdetachstate(pthread_chanter_attr_t* attr,
                                        int detached) {
  if (attr == nullptr) return EINVAL;
  attr->detached = detached;
  return 0;
}

// ------------------------------------------------------------------ mutex

int pthread_chanter_mutex_init(pthread_chanter_mutex_t* m) {
  if (m == nullptr) return EINVAL;
  m->impl = new (std::nothrow) lwt::Mutex;
  return m->impl != nullptr ? 0 : ENOMEM;
}

int pthread_chanter_mutex_destroy(pthread_chanter_mutex_t* m) {
  lwt::Mutex* x = mu(m);
  if (x == nullptr) return EINVAL;
  if (x->locked()) return EBUSY;
  delete x;
  m->impl = nullptr;
  return 0;
}

int pthread_chanter_mutex_lock(pthread_chanter_mutex_t* m) {
  lwt::Mutex* x = mu(m);
  if (x == nullptr || sched_or_null() == nullptr) return EINVAL;
  x->lock();
  return 0;
}

int pthread_chanter_mutex_trylock(pthread_chanter_mutex_t* m) {
  lwt::Mutex* x = mu(m);
  if (x == nullptr || sched_or_null() == nullptr) return EINVAL;
  return x->try_lock() ? 0 : EBUSY;
}

int pthread_chanter_mutex_timedlock(pthread_chanter_mutex_t* m,
                                    unsigned long long timeout_ns) {
  lwt::Mutex* x = mu(m);
  lwt::Scheduler* s = sched_or_null();
  if (x == nullptr || s == nullptr) return EINVAL;
  return x->try_lock_until(s->deadline_after(timeout_ns)) ? 0 : ETIMEDOUT;
}

int pthread_chanter_mutex_unlock(pthread_chanter_mutex_t* m) {
  lwt::Mutex* x = mu(m);
  if (x == nullptr) return EINVAL;
  if (x->owner() != lwt::Scheduler::self()) return EPERM;
  x->unlock();
  return 0;
}

// --------------------------------------------------------------- condvars

int pthread_chanter_cond_init(pthread_chanter_cond_t* c) {
  if (c == nullptr) return EINVAL;
  c->impl = new (std::nothrow) lwt::CondVar;
  return c->impl != nullptr ? 0 : ENOMEM;
}

int pthread_chanter_cond_destroy(pthread_chanter_cond_t* c) {
  lwt::CondVar* x = cv(c);
  if (x == nullptr) return EINVAL;
  if (x->waiting() != 0) return EBUSY;
  delete x;
  c->impl = nullptr;
  return 0;
}

int pthread_chanter_cond_wait(pthread_chanter_cond_t* c,
                              pthread_chanter_mutex_t* m) {
  lwt::CondVar* x = cv(c);
  lwt::Mutex* y = mu(m);
  if (x == nullptr || y == nullptr) return EINVAL;
  if (y->owner() != lwt::Scheduler::self()) return EPERM;
  x->wait(*y);
  return 0;
}

int pthread_chanter_cond_timedwait(pthread_chanter_cond_t* c,
                                   pthread_chanter_mutex_t* m,
                                   unsigned long long timeout_ns) {
  lwt::CondVar* x = cv(c);
  lwt::Mutex* y = mu(m);
  lwt::Scheduler* s = sched_or_null();
  if (x == nullptr || y == nullptr || s == nullptr) return EINVAL;
  if (y->owner() != lwt::Scheduler::self()) return EPERM;
  return x->wait_until(*y, s->deadline_after(timeout_ns)) ? 0 : ETIMEDOUT;
}

int pthread_chanter_cond_signal(pthread_chanter_cond_t* c) {
  lwt::CondVar* x = cv(c);
  if (x == nullptr) return EINVAL;
  x->signal();
  return 0;
}

int pthread_chanter_cond_broadcast(pthread_chanter_cond_t* c) {
  lwt::CondVar* x = cv(c);
  if (x == nullptr) return EINVAL;
  x->broadcast();
  return 0;
}

// -------------------------------------------------------------------- tls

int pthread_chanter_key_create(pthread_chanter_key_t* key,
                               void (*destructor)(void*)) {
  lwt::Scheduler* s = sched_or_null();
  if (key == nullptr || s == nullptr) return EINVAL;
  const int k = s->key_create(destructor);
  if (k < 0) return EAGAIN;
  *key = k;
  return 0;
}

int pthread_chanter_key_delete(pthread_chanter_key_t key) {
  lwt::Scheduler* s = sched_or_null();
  if (s == nullptr || key < 0 ||
      key >= static_cast<int>(lwt::kMaxTlsKeys)) {
    return EINVAL;
  }
  s->key_delete(key);
  return 0;
}

int pthread_chanter_setspecific(pthread_chanter_key_t key,
                                const void* value) {
  lwt::Scheduler* s = sched_or_null();
  if (s == nullptr || key < 0 ||
      key >= static_cast<int>(lwt::kMaxTlsKeys)) {
    return EINVAL;
  }
  s->set_specific(key, const_cast<void*>(value));
  return 0;
}

void* pthread_chanter_getspecific(pthread_chanter_key_t key) {
  lwt::Scheduler* s = sched_or_null();
  if (s == nullptr) return nullptr;
  return s->get_specific(key);
}

// ------------------------------------------------------------------- once

int pthread_chanter_once(pthread_chanter_once_t* once, void (*init)(void)) {
  if (once == nullptr || init == nullptr || sched_or_null() == nullptr) {
    return EINVAL;
  }
  // Lazy impl creation is safe: all threads of one process share one OS
  // thread, and fibers only interleave at scheduling points.
  if (once->impl == nullptr) once->impl = new (std::nothrow) lwt::Once;
  if (once->impl == nullptr) return ENOMEM;
  static_cast<lwt::Once*>(once->impl)->call(init);
  return 0;
}

}  // extern "C"
