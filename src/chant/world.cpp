// world.cpp — whole-machine bootstrap.
#include "chant/world.hpp"

#include <new>

#include "wire.hpp"

namespace chant {

World::World(const Config& cfg)
    : cfg_(cfg),
      machine_(nx::Machine::Config{cfg.pes, cfg.processes_per_pe, cfg.net,
                                   cfg.eager_threshold, cfg.fault, cfg.clock,
                                   cfg.clock_ctx, cfg.transport,
                                   cfg.fork_processes, cfg.shm_ring_bytes}) {
  // Termination counter in the machine's shared scratch (the chant-
  // reserved first 16 bytes): the same zeroed mapping is visible to
  // every process on every backend, fork mode included.
  static_assert(sizeof(std::atomic<int>) <= 16, "scratch reservation");
  mains_done_ = new (machine_.shared_scratch()) std::atomic<int>(0);
}

int World::register_handler(Runtime::Handler h) {
  user_handlers_.push_back(h);
  return kFirstUserHandler + static_cast<int>(user_handlers_.size()) - 1;
}

void World::run(const std::function<void(Runtime&)>& main_fn) {
  mains_done_->store(0, std::memory_order_release);
  machine_.run([&](nx::Endpoint& ep) {
    Runtime rt(*this, ep);
    rt.run_process(main_fn);
  });
}

}  // namespace chant
