// world.cpp — whole-machine bootstrap.
#include "chant/world.hpp"

#include <atomic>

#include "chant/hb.hpp"
#include "wire.hpp"

namespace chant {

namespace {

nx::Machine::Config machine_config(const World::Config& cfg) {
  nx::Machine::Config mc;
  mc.pes = cfg.pes;
  mc.processes_per_pe = cfg.processes_per_pe;
  mc.net = cfg.net;
  mc.eager_threshold = cfg.eager_threshold;
  mc.fault = cfg.fault;
  mc.clock = cfg.clock;
  mc.clock_ctx = cfg.clock_ctx;
  mc.transport = cfg.transport;  // chant-lint: allow(legacy-transport-config)
  mc.fork_processes = cfg.fork_processes;  // chant-lint: allow(legacy-transport-config)
  mc.shm_ring_bytes = cfg.shm_ring_bytes;  // chant-lint: allow(legacy-transport-config)
  mc.transport_spec = cfg.transport_spec;
  return mc;
}

}  // namespace

World::World(const Config& cfg) : cfg_(cfg), machine_(machine_config(cfg)) {}

int World::register_handler(Runtime::Handler h) {
  user_handlers_.push_back(h);
  return kFirstUserHandler + static_cast<int>(user_handlers_.size()) - 1;
}

void World::run(const std::function<void(Runtime&)>& main_fn) {
  hb::enable_from_env();
  hb::world_begin(static_cast<unsigned>(cfg_.pes * cfg_.processes_per_pe));
  // Zero this OS process's view of the termination counter before its
  // first pump: shared-memory backends share the store, wire-mirrored
  // backends zero their local mirror (children inherit it in fork mode,
  // and peer deltas only ever apply through a later pump).
  std::atomic_ref<std::uint32_t>(
      *static_cast<std::uint32_t*>(machine_.shared_scratch()))
      .store(0, std::memory_order_release);
  machine_.run([&](nx::Endpoint& ep) {
    Runtime rt(*this, ep);
    rt.run_process(main_fn);
  });
}

}  // namespace chant
