// remote.cpp — global thread operations (paper §3.3).
//
// Thread primitives that take or return global thread identifiers must
// cope with remote threads. Local targets go straight to the lwt layer;
// remote targets become remote service requests to the destination
// process's server thread — precisely the paper's design ("Chant
// utilizes the server thread and the remote service request mechanism to
// implement primitives which may require the cooperation of a remote
// processing element"). A remote join, whose handler must block, defers
// its reply to a helper fiber so the server stays responsive.
#include <cerrno>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "chant/runtime.hpp"
#include "chant/validate.hpp"
#include "wire.hpp"

namespace chant {

namespace {

/// Heap context for marshalled remote creations: the destination owns a
/// copy of the argument bytes for the lifetime of the thread.
struct MarshalCtx {
  Runtime* rt;
  Runtime::MarshalledEntry entry;
  std::vector<std::uint8_t> data;
};

void* marshal_tramp(void* p) {
  std::unique_ptr<MarshalCtx> ctx(static_cast<MarshalCtx*>(p));
  ctx->entry(*ctx->rt, ctx->data.data(), ctx->data.size());
  return nullptr;
}

void h_shutdown(Runtime& rt, Runtime::RsrContext&, const void*, std::size_t,
                std::vector<std::uint8_t>&) {
  // Raise the stop flag; the server loop re-checks it after dispatch.
  rt.request_server_stop();
}

void h_create(Runtime& rt, Runtime::RsrContext&, const void* arg,
              std::size_t len, std::vector<std::uint8_t>& rep) {
  wire::CreateReply out;
  wire::Create req;
  if (len < sizeof req) {
    out.status = EINVAL;
  } else {
    std::memcpy(&req, arg, sizeof req);
    SpawnOptions so;
    so.stack_size = static_cast<std::size_t>(req.stack_size);
    so.priority = req.priority;
    so.detached = req.detached != 0;
    if (req.marshalled_entry != 0) {
      auto ctx = std::make_unique<MarshalCtx>();
      ctx->rt = &rt;
      ctx->entry = reinterpret_cast<Runtime::MarshalledEntry>(
          static_cast<std::uintptr_t>(req.marshalled_entry));
      const auto* bytes = static_cast<const std::uint8_t*>(arg) + sizeof req;
      ctx->data.assign(bytes, bytes + req.payload_len);
      out.gid = rt.spawn_wrapped(&marshal_tramp, ctx.release(), so);
    } else {
      out.gid = rt.spawn_wrapped(
          req.entry, reinterpret_cast<void*>(req.arg), so);
    }
    out.status = 0;
  }
  rep.resize(sizeof out);
  std::memcpy(rep.data(), &out, sizeof out);
}

void h_join(Runtime& rt, Runtime::RsrContext& ctx, const void* arg,
            std::size_t len, std::vector<std::uint8_t>& rep) {
  wire::Lid req;
  if (len < sizeof req) {
    wire::JoinReply out;
    out.status = EINVAL;
    rep.resize(sizeof out);
    std::memcpy(rep.data(), &out, sizeof out);
    return;
  }
  std::memcpy(&req, arg, sizeof req);
  // Joining blocks, and the server thread must not block on behalf of one
  // client: defer the reply to a helper fiber (paper §3.3 pattern).
  ctx.deferred = true;
  const Runtime::RsrContext saved = ctx;
  const int lid = req.lid;
  lwt::ThreadAttr attr;
  attr.stack_size = 64 * 1024;
  attr.detached = true;
  attr.name = "join-helper";
  lwt::go(
      [&rt, saved, lid] {
        wire::JoinReply out;
        int err = 0;
        void* rv = rt.join_for_rsr(lid, &err);
        out.status = err;
        out.canceled = (rv == lwt::kCanceled) ? 1 : 0;
        out.retval = static_cast<std::uint64_t>(
            reinterpret_cast<std::uintptr_t>(rv));
        rt.reply(saved, &out, sizeof out);
      },
      attr);
}

void h_cancel(Runtime& rt, Runtime::RsrContext&, const void* arg,
              std::size_t len, std::vector<std::uint8_t>& rep) {
  wire::Status out;
  wire::Lid req;
  if (len < sizeof req) {
    out.status = EINVAL;
  } else {
    std::memcpy(&req, arg, sizeof req);
    out.status = rt.cancel_local(req.lid);
  }
  rep.resize(sizeof out);
  std::memcpy(rep.data(), &out, sizeof out);
}

void h_detach(Runtime& rt, Runtime::RsrContext&, const void* arg,
              std::size_t len, std::vector<std::uint8_t>& rep) {
  wire::Status out;
  wire::Lid req;
  if (len < sizeof req) {
    out.status = EINVAL;
  } else {
    std::memcpy(&req, arg, sizeof req);
    out.status = rt.detach_local(req.lid);
  }
  rep.resize(sizeof out);
  std::memcpy(rep.data(), &out, sizeof out);
}

void h_setprio(Runtime& rt, Runtime::RsrContext&, const void* arg,
               std::size_t len, std::vector<std::uint8_t>& rep) {
  wire::Status out;
  wire::Prio req;
  if (len < sizeof req) {
    out.status = EINVAL;
  } else {
    std::memcpy(&req, arg, sizeof req);
    out.status = rt.set_priority_local(req.lid, req.priority);
  }
  rep.resize(sizeof out);
  std::memcpy(rep.data(), &out, sizeof out);
}

void h_getprio(Runtime& rt, Runtime::RsrContext&, const void* arg,
               std::size_t len, std::vector<std::uint8_t>& rep) {
  wire::PrioReply out;
  wire::Lid req;
  if (len < sizeof req) {
    out.status = EINVAL;
  } else {
    std::memcpy(&req, arg, sizeof req);
    out.status = rt.get_priority_local(req.lid, &out.priority);
  }
  rep.resize(sizeof out);
  std::memcpy(rep.data(), &out, sizeof out);
}

}  // namespace

void Runtime::install_builtin_handlers() {
  handlers_.assign(wire::kFirstUserHandler, nullptr);
  handlers_[wire::kHShutdown] = &h_shutdown;
  handlers_[wire::kHCreate] = &h_create;
  handlers_[wire::kHJoin] = &h_join;
  handlers_[wire::kHCancel] = &h_cancel;
  handlers_[wire::kHDetach] = &h_detach;
  handlers_[wire::kHSetPrio] = &h_setprio;
  handlers_[wire::kHGetPrio] = &h_getprio;
}

// ----------------------------------------------------------- local sides

bool Runtime::is_local(const Gid& g) const {
  return g.pe == pe() && g.process == process();
}

void* Runtime::join_local(int lid, int* err) {
  ThreadRec* rec = find(lid);
  if (rec == nullptr || rec->join_committed || rec->detached) {
    *err = ESRCH;
    return nullptr;
  }
  if (rec->tcb == lwt::Scheduler::self()) {
    *err = EDEADLK;
    return nullptr;
  }
  rec->join_committed = true;
  void* rv = sched_.join(rec->tcb);
  threads_.erase(lid);
  free_lid(lid);
  *err = 0;
  return rv;
}

void* Runtime::join_for_rsr(int lid, int* err) { return join_local(lid, err); }

Status Runtime::join_local_until(int lid, std::uint64_t deadline_ns,
                                 void** retval) {
  ThreadRec* rec = find(lid);
  if (rec == nullptr || rec->join_committed || rec->detached) {
    return StatusCode::PeerGone;
  }
  if (rec->tcb == lwt::Scheduler::self()) {
    return StatusCode::Invalid;
  }
  rec->join_committed = true;
  void* rv = nullptr;
  if (!sched_.join_until(rec->tcb, deadline_ns, &rv)) {
    // join_until relinquished the claim: the target stays joinable.
    rec->join_committed = false;
    ++rsr_stats_.deadline_timeouts;
    return StatusCode::DeadlineExceeded;
  }
  threads_.erase(lid);
  free_lid(lid);
  if (retval != nullptr) *retval = rv;
  return StatusCode::Ok;
}

int Runtime::cancel_local(int lid) {
  ThreadRec* rec = find(lid);
  if (rec == nullptr || rec->finished) return ESRCH;
  sched_.cancel(rec->tcb);
  return 0;
}

int Runtime::set_priority_local(int lid, int priority) {
  ThreadRec* rec = find(lid);
  if (rec == nullptr || rec->finished) return ESRCH;
  if (priority < 0 || priority >= lwt::kNumPriorities) return EINVAL;
  sched_.set_priority(rec->tcb, priority);
  return 0;
}

int Runtime::get_priority_local(int lid, int* priority) {
  ThreadRec* rec = find(lid);
  if (rec == nullptr || rec->finished) return ESRCH;
  *priority = rec->tcb->priority;
  return 0;
}

int Runtime::detach_local(int lid) {
  ThreadRec* rec = find(lid);
  if (rec == nullptr || rec->join_committed) return ESRCH;
  if (rec->detached) return EINVAL;
  rec->detached = true;
  if (rec->finished) {
    sched_.detach(rec->tcb);  // reaps the zombie
    threads_.erase(lid);
    free_lid(lid);
    return 0;
  }
  sched_.detach(rec->tcb);
  return 0;
}

// --------------------------------------------------------- public (global)

Gid Runtime::create(lwt::EntryFn entry, void* arg, int dst_pe,
                    int dst_process, const SpawnOptions& opts) {
  if (dst_pe == PTHREAD_CHANTER_LOCAL) dst_pe = pe();
  if (dst_process == PTHREAD_CHANTER_LOCAL) dst_process = process();
  if (dst_pe == pe() && dst_process == process()) {
    return spawn_wrapped(entry, arg, opts);
  }
  wire::Create req;
  req.entry = entry;
  req.arg = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(arg));
  req.stack_size = opts.stack_size;
  req.priority = opts.priority;
  req.detached = opts.detached ? 1 : 0;
  const std::vector<std::uint8_t> rep =
      call(dst_pe, dst_process, wire::kHCreate, &req, sizeof req);
  wire::CreateReply out;
  if (rep.size() < sizeof out) {
    throw std::runtime_error("chant::create: malformed reply");
  }
  std::memcpy(&out, rep.data(), sizeof out);
  if (out.status != 0) {
    throw std::runtime_error("chant::create: remote creation failed");
  }
  return out.gid;
}

Gid Runtime::create_marshalled(MarshalledEntry entry, const void* arg,
                               std::size_t len, int dst_pe, int dst_process,
                               const SpawnOptions& opts) {
  if (dst_pe == PTHREAD_CHANTER_LOCAL) dst_pe = pe();
  if (dst_process == PTHREAD_CHANTER_LOCAL) dst_process = process();
  if (dst_pe == pe() && dst_process == process()) {
    // Local shortcut: same ownership semantics as the remote path.
    auto ctx = std::make_unique<MarshalCtx>();
    ctx->rt = this;
    ctx->entry = entry;
    const auto* bytes = static_cast<const std::uint8_t*>(arg);
    ctx->data.assign(bytes, bytes + len);
    return spawn_wrapped(&marshal_tramp, ctx.release(), opts);
  }
  wire::Create req;
  req.marshalled_entry = static_cast<std::uint64_t>(
      reinterpret_cast<std::uintptr_t>(entry));
  req.stack_size = opts.stack_size;
  req.priority = opts.priority;
  req.detached = opts.detached ? 1 : 0;
  req.payload_len = static_cast<std::uint32_t>(len);
  // {Create header, argument bytes} ship as one gather descriptor — no
  // marshal vector on the requesting side.
  const nx::IoVec iov[2] = {{&req, sizeof req}, {arg, len}};
  const std::vector<std::uint8_t> rep = callv(
      dst_pe, dst_process, wire::kHCreate, iov, len > 0 ? 2u : 1u);
  wire::CreateReply out;
  if (rep.size() < sizeof out) {
    throw std::runtime_error("chant::create_marshalled: malformed reply");
  }
  std::memcpy(&out, rep.data(), sizeof out);
  if (out.status != 0) {
    throw std::runtime_error("chant::create_marshalled: remote failure");
  }
  return out.gid;
}

void* Runtime::join(const Gid& g, int* err) {
  validate::check_blocking("chant::Runtime::join", /*timed=*/false);
  int local_err = 0;
  int* e = err != nullptr ? err : &local_err;
  if (is_local(g)) {
    return join_local(g.thread, e);
  }
  wire::Lid req{g.thread};
  const std::vector<std::uint8_t> rep =
      call(g.pe, g.process, wire::kHJoin, &req, sizeof req);
  wire::JoinReply out;
  if (rep.size() < sizeof out) {
    *e = EINVAL;
    return nullptr;
  }
  std::memcpy(&out, rep.data(), sizeof out);
  *e = out.status;
  if (out.status != 0) return nullptr;
  if (out.canceled != 0) return lwt::kCanceled;
  return reinterpret_cast<void*>(static_cast<std::uintptr_t>(out.retval));
}

Status Runtime::join(const Gid& g, Deadline deadline, void** retval) {
  if (is_local(g)) {
    return join_local_until(g.thread, resolve_deadline(deadline), retval);
  }
  // Remote: a timed-out request abandons the call slot, but the remote
  // join-helper keeps the target claimed — the caller cannot re-join it
  // later (documented one-shot semantics for remote timed joins).
  wire::Lid req{g.thread};
  std::vector<std::uint8_t> rep;
  const Status st =
      call(g.pe, g.process, wire::kHJoin, &req, sizeof req, deadline, &rep);
  if (!st.ok()) return st;
  wire::JoinReply out;
  if (rep.size() < sizeof out) return StatusCode::Invalid;
  std::memcpy(&out, rep.data(), sizeof out);
  if (out.status == ESRCH) return StatusCode::PeerGone;
  if (out.status != 0) return StatusCode::Invalid;
  if (retval != nullptr) {
    *retval = out.canceled != 0
                  ? lwt::kCanceled
                  : reinterpret_cast<void*>(
                        static_cast<std::uintptr_t>(out.retval));
  }
  return StatusCode::Ok;
}

int Runtime::cancel(const Gid& g) {
  if (is_local(g)) return cancel_local(g.thread);
  wire::Lid req{g.thread};
  const std::vector<std::uint8_t> rep =
      call(g.pe, g.process, wire::kHCancel, &req, sizeof req);
  wire::Status out{EINVAL};
  if (rep.size() >= sizeof out) std::memcpy(&out, rep.data(), sizeof out);
  return out.status;
}

int Runtime::detach(const Gid& g) {
  if (is_local(g)) return detach_local(g.thread);
  wire::Lid req{g.thread};
  const std::vector<std::uint8_t> rep =
      call(g.pe, g.process, wire::kHDetach, &req, sizeof req);
  wire::Status out{EINVAL};
  if (rep.size() >= sizeof out) std::memcpy(&out, rep.data(), sizeof out);
  return out.status;
}

int Runtime::set_priority(const Gid& g, int priority) {
  if (is_local(g)) return set_priority_local(g.thread, priority);
  wire::Prio req{g.thread, priority};
  const std::vector<std::uint8_t> rep =
      call(g.pe, g.process, wire::kHSetPrio, &req, sizeof req);
  wire::Status out{EINVAL};
  if (rep.size() >= sizeof out) std::memcpy(&out, rep.data(), sizeof out);
  return out.status;
}

int Runtime::get_priority(const Gid& g, int* priority) {
  if (priority == nullptr) return EINVAL;
  if (is_local(g)) return get_priority_local(g.thread, priority);
  wire::Lid req{g.thread};
  const std::vector<std::uint8_t> rep =
      call(g.pe, g.process, wire::kHGetPrio, &req, sizeof req);
  wire::PrioReply out{EINVAL, 0};
  if (rep.size() >= sizeof out) std::memcpy(&out, rep.data(), sizeof out);
  if (out.status == 0) *priority = out.priority;
  return out.status;
}

}  // namespace chant
