// pthread_chanter.cpp — the Appendix-A C interface (paper Fig. 14),
// implemented as a veneer over chant::Runtime. Error reporting follows
// pthreads (0 / errno values); C++ exceptions from the runtime are
// translated at this boundary.
#include "chant/pthread_chanter.h"

#include <cerrno>
#include <cstdio>
#include <new>
#include <stdexcept>

#include "chant/runtime.hpp"

using chant::Gid;
using chant::Runtime;

extern "C" const pthread_chanter_t PTHREAD_CHANTER_ANY = {-1, -1, -1};

namespace {

Runtime* rt_or_null() { return Runtime::current(); }

int translate_exception() {
  try {
    throw;
  } catch (const std::invalid_argument&) {
    return ERANGE;
  } catch (const std::logic_error&) {
    return EINVAL;
  } catch (const std::bad_alloc&) {
    return ENOMEM;
  } catch (const std::exception&) {
    return EAGAIN;
  }
}

}  // namespace

extern "C" {

int pthread_chanter_create(pthread_chanter_t* thread,
                           const pthread_chanter_attr_t* attr,
                           void* (*start_routine)(void*), void* arg, int pe,
                           int process) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr || thread == nullptr || start_routine == nullptr) {
    return EINVAL;
  }
  chant::SpawnOptions so;
  if (attr != nullptr) {
    so.stack_size = attr->stack_size;
    so.priority = attr->priority;
    so.detached = attr->detached != 0;
  }
  try {
    *thread = rt->create(start_routine, arg, pe, process, so);
    return 0;
  } catch (const lwt::CancelInterrupt&) {
    throw;
  } catch (...) {
    return translate_exception();
  }
}

int pthread_chanter_join(const pthread_chanter_t* thread, void** status) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr || thread == nullptr) return EINVAL;
  int err = 0;
  void* rv = rt->join(*thread, &err);
  if (err == 0 && status != nullptr) *status = rv;
  return err;
}

int pthread_chanter_join_timed(const pthread_chanter_t* thread, void** status,
                               unsigned long long timeout_ns) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr || thread == nullptr) return EINVAL;
  try {
    void* rv = nullptr;
    const chant::Status st =
        rt->join(*thread, chant::Deadline::after(timeout_ns), &rv);
    switch (st.code()) {
      case chant::StatusCode::Ok:
        if (status != nullptr) *status = rv;
        return 0;
      case chant::StatusCode::DeadlineExceeded:
        return ETIMEDOUT;
      case chant::StatusCode::PeerGone:
        return ESRCH;
      default:
        return EDEADLK;
    }
  } catch (const lwt::CancelInterrupt&) {
    throw;
  } catch (...) {
    return translate_exception();
  }
}

int pthread_chanter_detach(const pthread_chanter_t* thread) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr || thread == nullptr) return EINVAL;
  return rt->detach(*thread);
}

void pthread_chanter_exit(void* value_ptr) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr) {
    std::fprintf(stderr, "pthread_chanter_exit outside a chant runtime\n");
    std::abort();
  }
  rt->exit_thread(value_ptr);
}

void pthread_chanter_yield(void) {
  Runtime* rt = rt_or_null();
  if (rt != nullptr) rt->yield();
}

pthread_chanter_t* pthread_chanter_self(void) {
  // The gid lives in the thread's registry record, so the pointer stays
  // valid for the thread's lifetime, as the paper's interface implies.
  static thread_local pthread_chanter_t anon{-1, -1, -1};
  Runtime* rt = rt_or_null();
  if (rt == nullptr) return &anon;
  lwt::Tcb* me = lwt::Scheduler::self();
  if (me == nullptr || me->user == nullptr) {
    anon = rt->self();
    return &anon;
  }
  // ThreadRec's first member is the tcb; expose the gid via Runtime.
  static thread_local pthread_chanter_t cur;
  cur = rt->self();
  return &cur;
}

int pthread_chanter_pthread(const pthread_chanter_t* thread) {
  return thread != nullptr ? thread->thread : -1;
}

int pthread_chanter_pe(const pthread_chanter_t* thread) {
  return thread != nullptr ? thread->pe : -1;
}

int pthread_chanter_process(const pthread_chanter_t* thread) {
  return thread != nullptr ? thread->process : -1;
}

int pthread_chanter_equal(const pthread_chanter_t* t1,
                          const pthread_chanter_t* t2) {
  if (t1 == nullptr || t2 == nullptr) return 0;
  return (*t1 == *t2) ? 1 : 0;
}

int pthread_chanter_cancel(const pthread_chanter_t* thread) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr || thread == nullptr) return EINVAL;
  return rt->cancel(*thread);
}

int pthread_chanter_setprio(const pthread_chanter_t* thread, int priority) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr || thread == nullptr) return EINVAL;
  return rt->set_priority(*thread, priority);
}

int pthread_chanter_getprio(const pthread_chanter_t* thread, int* priority) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr || thread == nullptr || priority == nullptr) {
    return EINVAL;
  }
  return rt->get_priority(*thread, priority);
}

int pthread_chanter_send(int type, const char* buf, int count,
                         const pthread_chanter_t* thread) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr || thread == nullptr || count < 0) return EINVAL;
  try {
    rt->send(type, buf, static_cast<std::size_t>(count), *thread);
    return 0;
  } catch (const lwt::CancelInterrupt&) {
    throw;
  } catch (...) {
    return translate_exception();
  }
}

int pthread_chanter_recv(int type, char* buf, int count,
                         pthread_chanter_t* thread) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr || thread == nullptr || count < 0) return EINVAL;
  try {
    const chant::MsgInfo mi =
        rt->recv(type, buf, static_cast<std::size_t>(count), *thread);
    if (chant::is_any(*thread)) *thread = mi.src;
    return 0;
  } catch (const lwt::CancelInterrupt&) {
    throw;
  } catch (...) {
    return translate_exception();
  }
}

int pthread_chanter_irecv(int* handle, int type, char* buf, int count,
                          pthread_chanter_t* thread) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr || handle == nullptr || thread == nullptr || count < 0) {
    return EINVAL;
  }
  try {
    *handle = rt->irecv(type, buf, static_cast<std::size_t>(count), *thread);
    return 0;
  } catch (const lwt::CancelInterrupt&) {
    throw;
  } catch (...) {
    return translate_exception();
  }
}

int pthread_chanter_msgtest(int handle) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr) return -EINVAL;
  try {
    return rt->msgtest(handle) ? 1 : 0;
  } catch (const lwt::CancelInterrupt&) {
    throw;
  } catch (...) {
    return -translate_exception();
  }
}

int pthread_chanter_msgwait(int handle) {
  Runtime* rt = rt_or_null();
  if (rt == nullptr) return EINVAL;
  try {
    (void)rt->msgwait(handle);
    return 0;
  } catch (const lwt::CancelInterrupt&) {
    throw;
  } catch (...) {
    return translate_exception();
  }
}

}  // extern "C"
