// runtime.cpp — Runtime lifecycle, thread registry, blocking machinery.
#include "chant/runtime.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "chant/hb.hpp"
#include "chant/validate.hpp"
#include "chant/world.hpp"
#include "wire.hpp"

namespace chant {

namespace {
thread_local Runtime* tl_runtime = nullptr;

void idle_hook(void*) {
  // Nothing runnable: the process is waiting on another simulated
  // process. Back off the OS thread briefly so peers make progress.
  std::this_thread::yield();
}

void transport_idle_hook(void* rt_) {
  // Wire backends (needs_pump): instead of burning the timeslice, block
  // on the transport doorbell until inbound traffic arrives — bounded
  // both by a short budget (the 1 ms-bounded parks elsewhere stay the
  // liveness backstop) and by the earliest armed timer, so an idle wait
  // never delays a due deadline.
  auto* rt = static_cast<Runtime*>(rt_);
  std::uint64_t budget = 200'000;  // 200 µs
  lwt::Scheduler& sched = rt->scheduler();
  if (sched.armed_timers() != 0) {
    const std::uint64_t due = sched.next_timer_deadline();
    const std::uint64_t now = sched.now();
    if (due <= now) {
      std::this_thread::yield();
      return;
    }
    budget = std::min(budget, due - now);
  }
  nx::Endpoint& ep = rt->endpoint();
  ep.machine().transport().wait_inbound(ep, budget);
}

// Extra scheduler workers are fresh OS threads; seed their Runtime
// thread-local so fibers migrated onto them still see Runtime::current().
void worker_start_hook(void* rt) { tl_runtime = static_cast<Runtime*>(rt); }
void worker_stop_hook(void*) { tl_runtime = nullptr; }
}  // namespace

const char* to_string(PollPolicy p) noexcept {
  switch (p) {
    case PollPolicy::ThreadPolls: return "Thread polls";
    case PollPolicy::SchedulerPollsWQ: return "Scheduler polls (WQ)";
    case PollPolicy::SchedulerPollsPS: return "Scheduler polls (PS)";
  }
  return "?";
}

const char* to_string(AddressingMode m) noexcept {
  switch (m) {
    case AddressingMode::TagOverload: return "tag-overload";
    case AddressingMode::HeaderField: return "header-field";
  }
  return "?";
}

const char* to_string(StatusCode c) noexcept {
  switch (c) {
    case StatusCode::Ok: return "ok";
    case StatusCode::Pending: return "pending";
    case StatusCode::DeadlineExceeded: return "deadline exceeded";
    case StatusCode::Canceled: return "canceled";
    case StatusCode::Truncated: return "truncated";
    case StatusCode::PeerGone: return "peer gone";
    case StatusCode::AlreadyCompleted: return "already completed";
    case StatusCode::Invalid: return "invalid";
  }
  return "?";
}

Runtime::Runtime(World& world, nx::Endpoint& ep)
    : world_(world),
      ep_(ep),
      cfg_(world.config().rt),
      codec_(cfg_.addressing),
      sched_(cfg_.backend) {
  // Opt into the concurrency validator via the environment so existing
  // binaries can run validated without code changes (DESIGN.md §9).
  validate::enable_from_env();
  hb::runtime_started(&sched_, ep.pe(), ep.proc());
  install_builtin_handlers();
  // The world's clock override (the sim VirtualClock) also drives the
  // scheduler's timer wheel, so deadline expiries interleave
  // deterministically with the modelled network.
  if (world.config().clock != nullptr) {
    sched_.set_clock(world.config().clock, world.config().clock_ctx);
  }
  for (Handler h : world.user_handlers_) handlers_.push_back(h);
  if (cfg_.policy == PollPolicy::SchedulerPollsWQ && cfg_.wq_use_testany) {
    sched_.set_wq_group_poll(&Runtime::wq_group_poll, this);
  }
  if (ep.machine().transport().needs_pump()) {
    sched_.set_idle_hook(&transport_idle_hook, this);
  } else {
    sched_.set_idle_hook(&idle_hook, nullptr);
  }
  sched_.set_workers(cfg_.workers);
  sched_.set_worker_hooks(&worker_start_hook, &worker_stop_hook, this);
  if (cfg_.controller_factory != nullptr) {
    sched_.set_controller(
        cfg_.controller_factory(cfg_.controller_ctx, ep.pe(), ep.proc()));
  }
}

Runtime::~Runtime() { hb::runtime_stopped(&sched_); }

Runtime* Runtime::current() { return tl_runtime; }

// ------------------------------------------------------------- registry

// alloc_lid/free_lid/find run under reg_mu_, held by their callers.
int Runtime::alloc_lid() {
  if (!free_lids_.empty()) {
    int lid = free_lids_.back();
    free_lids_.pop_back();
    return lid;
  }
  if (next_lid_ > codec_.max_lid()) {
    std::fprintf(stderr,
                 "chant: out of thread ids (max %d in %s addressing)\n",
                 codec_.max_lid(), to_string(cfg_.addressing));
    std::abort();
  }
  return next_lid_++;
}

void Runtime::free_lid(int lid) {
  if (lid >= kFirstUserLid) free_lids_.push_back(lid);
}

Runtime::ThreadRec& Runtime::register_thread(lwt::Tcb* tcb, int lid) {
  ThreadRec rec;
  rec.tcb = tcb;
  rec.gid = Gid{pe(), process(), lid};
  std::lock_guard<std::mutex> g(reg_mu_);
  auto [it, inserted] = threads_.emplace(lid, rec);
  if (!inserted) {
    std::fprintf(stderr, "chant: duplicate lid %d\n", lid);
    std::abort();
  }
  tcb->user = &it->second;
  return it->second;
}

Runtime::ThreadRec* Runtime::find(int lid) {
  auto it = threads_.find(lid);
  return it == threads_.end() ? nullptr : &it->second;
}

void Runtime::on_thread_exit(int lid) {
  std::lock_guard<std::mutex> g(reg_mu_);
  ThreadRec* rec = find(lid);
  if (rec == nullptr) return;
  rec->finished = true;
  if (rec->detached) {
    threads_.erase(lid);
    free_lid(lid);
  }
}

Gid Runtime::self() const {
  lwt::Tcb* me = lwt::Scheduler::self();
  if (me != nullptr && me->user != nullptr) {
    return static_cast<ThreadRec*>(me->user)->gid;
  }
  // Anonymous helper fibers (RSR deferred-reply helpers) have no lid.
  return Gid{pe(), process(), -1};
}

int Runtime::current_lid() const { return self().thread; }

lwt::Tcb* Runtime::local_tcb(const Gid& g) const {
  if (g.pe != pe() || g.process != process()) return nullptr;
  std::lock_guard<std::mutex> lk(reg_mu_);
  auto it = threads_.find(g.thread);
  return it == threads_.end() ? nullptr : it->second.tcb;
}

// ------------------------------------------------------------- spawning

namespace {
struct ChantEntry {
  Runtime* rt;
  lwt::EntryFn fn;
  void* arg;
  int lid;
};

/// RAII so the registry is maintained even when the thread exits by
/// cancellation or pthread_chanter_exit (both unwind the fiber stack).
struct ExitGuard {
  Runtime* rt;
  int lid;
  ~ExitGuard();
};
}  // namespace

/// Thrown by Runtime::exit_thread; caught in the trampoline so RAII on
/// the fiber stack runs (stronger than pthread_exit, same spirit).
struct ThreadExit {
  void* retval;
};

void* chant_thread_tramp(void* p) {
  std::unique_ptr<ChantEntry> e(static_cast<ChantEntry*>(p));
  ExitGuard guard{e->rt, e->lid};
  try {
    return e->fn(e->arg);
  } catch (const ThreadExit& x) {
    return x.retval;
  }
}

namespace {
ExitGuard::~ExitGuard() { rt->on_thread_exit(lid); }
}  // namespace

Gid Runtime::spawn_wrapped(lwt::EntryFn entry, void* arg,
                           const SpawnOptions& opts, int fixed_lid) {
  int lid = fixed_lid;
  if (lid < 0) {
    std::lock_guard<std::mutex> g(reg_mu_);
    lid = alloc_lid();
  }
  auto e = std::make_unique<ChantEntry>(ChantEntry{this, entry, arg, lid});
  lwt::ThreadAttr attr;
  attr.stack_size =
      opts.stack_size != 0 ? opts.stack_size : cfg_.default_stack_size;
  attr.priority = opts.priority;
  attr.name = opts.name;
  // lwt-level detach is requested through detach() so the registry and
  // the scheduler agree; the chant-level flag lives in the record.
  lwt::Tcb* tcb = sched_.spawn(&chant_thread_tramp, e.release(), attr);
  ThreadRec& rec = register_thread(tcb, lid);
  if (opts.detached) {
    rec.detached = true;
    sched_.detach(tcb);
  }
  return rec.gid;
}

void Runtime::yield() { sched_.yield(); }

void Runtime::exit_thread(void* retval) {
  if (lwt::Scheduler::self() == nullptr) {
    std::fprintf(stderr, "chant: exit_thread outside a thread\n");
    std::abort();
  }
  throw ThreadExit{retval};
}

// ----------------------------------------------------- blocking machinery

bool Runtime::wait_test(void* ctx) {
  auto* w = static_cast<WaitCtx*>(ctx);
  if (w->done) return true;
  if (w->ep->msgtest(w->nxh, &w->hdr)) {
    w->done = true;
    return true;
  }
  return false;
}

void Runtime::block_until(WaitCtx& w) {
  block_until(w, lwt::kNoDeadline);
}

bool Runtime::block_until(WaitCtx& w, std::uint64_t deadline_ns) {
  const hb::WaitScope hb_scope(&w, "chant::Runtime message wait",
                               deadline_ns != lwt::kNoDeadline);
  const lwt::PollRequest req{&Runtime::wait_test, &w};
  switch (cfg_.policy) {
    case PollPolicy::ThreadPolls:
      return sched_.poll_block_tp(req, deadline_ns);
    case PollPolicy::SchedulerPollsPS:
      return sched_.poll_block_ps(req, deadline_ns);
    case PollPolicy::SchedulerPollsWQ: {
      if (cfg_.wq_use_testany) wq_waits_.push_back(&w);
      bool completed = false;
      try {
        completed = sched_.poll_block_wq(req, deadline_ns);
      } catch (...) {
        std::erase(wq_waits_, &w);
        throw;
      }
      if (cfg_.wq_use_testany) std::erase(wq_waits_, &w);
      return completed;
    }
  }
  return false;  // unreachable
}

std::uint64_t Runtime::resolve_deadline(const Deadline& d) const {
  if (d.is_infinite()) return lwt::kNoDeadline;
  if (!d.is_relative()) return d.raw_ns();
  return sched_.deadline_after(d.raw_ns());
}

std::size_t Runtime::wq_group_poll(void* rt_, lwt::Scheduler& sched) {
  auto* rt = static_cast<Runtime*>(rt_);
  // Selector support: the group poll runs without the scheduler's wait
  // lock, making it this policy's safe point for revealing in-flight
  // messages and delivering deferred waiter fires. msgtest/msgtestany
  // themselves must never flush — per-entry scans call them under
  // wait_mu_, and the fire path re-enters the scheduler.
  if (rt->ep_.poll_progress()) rt->ep_.flush_waiter_fires();
  auto& ws = rt->wq_waits_;
  if (ws.empty()) return 0;
  // One msgtestany per scheduling point — the MPI-style WQ the paper
  // hypothesised would repair the algorithm's msgtest blow-up (§4.2).
  std::vector<nx::Handle> hs;
  hs.reserve(ws.size());
  for (WaitCtx* w : ws) hs.push_back(w->done ? nx::kInvalidHandle : w->nxh);
  nx::MsgHeader hdr;
  const int idx = rt->ep_.msgtestany(hs.data(), hs.size(), &hdr);
  // The group test's drain may have delivered into waiter-armed
  // receives; deliver those fires now (safe: no scheduler lock held).
  rt->ep_.flush_waiter_fires();
  if (idx < 0) return 0;
  WaitCtx* w = ws[static_cast<std::size_t>(idx)];
  w->hdr = hdr;
  w->done = true;
  ws.erase(ws.begin() + idx);
  sched.wq_complete(w);
  return 1;
}

// --------------------------------------------------------- process main

namespace {
struct MainCtx {
  Runtime* rt;
  const std::function<void(Runtime&)>* fn;
};
}  // namespace

void* chant_server_tramp(void* p) {
  static_cast<Runtime*>(p)->server_loop();
  return nullptr;
}

namespace {
void* chant_main_tramp(void* p) {
  auto* mc = static_cast<MainCtx*>(p);
  Runtime& rt = *mc->rt;
  rt.register_thread(lwt::Scheduler::self(), kMainLid);
  lwt::Tcb* server = nullptr;
  if (rt.config().start_server) {
    SpawnOptions so;
    // Under the scheduler-polling policies the waiting server is parked,
    // so a permanently high priority gives the paper's "scheduled at the
    // next context-switch point" behaviour for free. Under Thread-polls
    // the server actively re-runs to poll — a high-priority poller would
    // starve every computation thread — so it polls at normal priority
    // and boosts itself only once a request has been received
    // (server_loop), which is the paper's §3.2 wording exactly.
    const bool park_high =
        rt.config().server_high_priority &&
        rt.config().policy != PollPolicy::ThreadPolls;
    so.priority = park_high ? lwt::kServerPriority : lwt::kDefaultPriority;
    so.name = "chant-server";
    rt.spawn_wrapped(&chant_server_tramp, &rt, so, kServerLid);
    server = rt.local_tcb(Gid{rt.pe(), rt.process(), kServerLid});
    hb::server_started(rt.pe(), rt.process(), server);
  }
  try {
    (*mc->fn)(rt);
  } catch (const lwt::CancelInterrupt&) {
    // The hb checker recovers a diagnosed-stuck world by canceling the
    // stranded fibers; letting main unwind into the normal termination
    // protocol turns a would-be hang into a clean (failed) iteration.
    if (!hb::enabled()) throw;
  }
  // Termination protocol: a process may not stop serving RSRs until
  // every process's main has returned (a peer might still be joining a
  // thread we host). Main parks on a policy-independent scheduler wait,
  // so it neither starves leftover lower-priority threads (they still
  // get the pe) nor can be starved by higher-priority pollers (the
  // scheduler tests parked waits at every point, including while idle).
  World& world = rt.world();
  world.note_main_done();
  const lwt::PollRequest all_done{
      [](void* w) {
        auto* wld = static_cast<World*>(w);
        // Uncleanly lost peers can never announce their main returned;
        // counting them keeps a dead peer from wedging shutdown (the
        // loss itself surfaced as PeerGone on any in-flight traffic).
        return wld->mains_done() + wld->peers_gone() >=
               wld->total_processes();
      },
      &world};
  rt.scheduler().poll_block_generic(all_done);
  if (server != nullptr) {
    // The shutdown post is a one-way message, so under an injected lossy
    // net (sim FaultyNet) it can vanish like any other message — and the
    // server would then sit in its receive forever. Resending on a
    // bounded timed join makes termination drop-tolerant; a duplicate
    // shutdown is harmless (the first copy to land flips server_stop_,
    // stragglers expire with the endpoint). On a loss-free net the first
    // join returns before the deadline and this is a single post+join.
    const Gid sgid{rt.pe(), rt.process(), kServerLid};
    for (;;) {
      rt.post(rt.pe(), rt.process(), wire::kHShutdown, nullptr, 0);
      const Status st = rt.join(sgid, Deadline::after(5'000'000), nullptr);
      if (st != StatusCode::DeadlineExceeded) break;
    }
  }
  rt.on_thread_exit(kMainLid);
  return nullptr;
}
}  // namespace

void Runtime::run_process(const std::function<void(Runtime&)>& user_main) {
  Runtime* prev = tl_runtime;
  tl_runtime = this;
  MainCtx mc{this, &user_main};
  lwt::ThreadAttr attr;
  attr.stack_size = cfg_.default_stack_size;
  attr.name = "chant-main";
  sched_.run_main(&chant_main_tramp, &mc, attr);
  tl_runtime = prev;
}

}  // namespace chant
