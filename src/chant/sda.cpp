// sda.cpp — shared-data-abstraction plumbing (monitor objects over RSR).
#include "chant/sda.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>

#include "lwt/lwt.hpp"

namespace chant::detail {

namespace {

/// One live instance. Kept in a shared_ptr so a helper fiber that is
/// still inside a method survives a concurrent destroy request.
struct Instance {
  void* state = nullptr;
  SdaBase::Dtor dtor = nullptr;
  lwt::Mutex mu;  ///< monitor lock: one method body at a time
  bool dying = false;
};

/// Per simulated process (per OS thread) instance table.
thread_local std::map<std::int32_t, std::shared_ptr<Instance>> t_instances;
thread_local std::int32_t t_next_instance = 1;

/// handler id -> class object; written during SPMD registration (before
/// World::run, single-threaded), read from every process afterwards.
std::mutex g_reg_mu;
std::map<int, SdaBase*> g_classes;

enum : std::int32_t { kOpCreate = 1, kOpInvoke = 2, kOpDestroy = 3 };

struct SdaWire {
  std::int32_t op = 0;
  std::int32_t class_handler = 0;
  std::int32_t instance = 0;
  std::int32_t method = 0;
};

struct SdaReplyWire {
  std::int32_t status = 0;  // 0 ok / errno
  std::int32_t instance = 0;
};

/// Fills the handler's reply vector (the server sends it exactly once —
/// replying directly from a non-deferred handler would produce a second,
/// empty auto-reply that could pair with a later request when the
/// sequence counter wraps).
void set_status(std::vector<std::uint8_t>& reply, int status,
                std::int32_t instance = -1) {
  SdaReplyWire rw{status, instance};
  reply.resize(sizeof rw);
  std::memcpy(reply.data(), &rw, sizeof rw);
}

/// For helper fibers, which really do reply on their own (the handler
/// marked the context deferred, so the server stays silent).
void reply_status(Runtime& rt, const Runtime::RsrContext& ctx, int status,
                  std::int32_t instance = -1) {
  SdaReplyWire rw{status, instance};
  rt.reply(ctx, &rw, sizeof rw);
}

}  // namespace

SdaBase* sda_by_handler(int handler_id) {
  std::lock_guard<std::mutex> lk(g_reg_mu);
  auto it = g_classes.find(handler_id);
  return it == g_classes.end() ? nullptr : it->second;
}

SdaBase::SdaBase(World& world, Ctor ctor, Dtor dtor)
    : ctor_(ctor), dtor_(dtor) {
  handler_id_ = world.register_handler(&SdaBase::rsr_handler);
  std::lock_guard<std::mutex> lk(g_reg_mu);
  g_classes[handler_id_] = this;
}

int SdaBase::add_method(RawMethod m) {
  methods_.push_back(m);
  return static_cast<int>(methods_.size()) - 1;
}

void SdaBase::rsr_handler(Runtime& rt, Runtime::RsrContext& ctx,
                          const void* arg, std::size_t len,
                          std::vector<std::uint8_t>& reply) {
  SdaWire w;
  if (len < sizeof w) {
    set_status(reply, EINVAL);
    return;
  }
  std::memcpy(&w, arg, sizeof w);
  SdaBase* cls = sda_by_handler(w.class_handler);
  if (cls == nullptr) {
    set_status(reply, EINVAL);
    return;
  }

  switch (w.op) {
    case kOpCreate: {
      auto inst = std::make_shared<Instance>();
      inst->state = cls->ctor_();
      inst->dtor = cls->dtor_;
      const std::int32_t id = t_next_instance++;
      t_instances.emplace(id, std::move(inst));
      set_status(reply, 0, id);
      return;
    }
    case kOpInvoke: {
      auto it = t_instances.find(w.instance);
      if (it == t_instances.end() || w.method < 0 ||
          w.method >= static_cast<int>(cls->methods_.size())) {
        set_status(reply, ESRCH);
        return;
      }
      // Monitor semantics without stalling the server: the method body
      // runs in a helper fiber serialized by the instance lock, and the
      // reply is deferred to that fiber (paper §3.3 pattern).
      ctx.deferred = true;
      const Runtime::RsrContext saved = ctx;
      std::shared_ptr<Instance> inst = it->second;
      const RawMethod method =
          cls->methods_[static_cast<std::size_t>(w.method)];
      std::vector<std::uint8_t> body(
          static_cast<const std::uint8_t*>(arg) + sizeof w,
          static_cast<const std::uint8_t*>(arg) + len);
      lwt::ThreadAttr attr;
      attr.detached = true;
      attr.name = "sda-method";
      lwt::go([&rt, saved, inst, method, body = std::move(body)] {
        lwt::LockGuard g(inst->mu);
        if (inst->dying) {
          reply_status(rt, saved, ESRCH);
          return;
        }
        std::vector<std::uint8_t> out;
        method(rt, inst->state, body.data(), body.size(), out);
        // {status frame, method output} leave as one gather descriptor;
        // reply() returns only once both buffers are reusable.
        SdaReplyWire rw{0, 0};
        const nx::IoVec iov[2] = {{&rw, sizeof rw},
                                  {out.data(), out.size()}};
        rt.replyv(saved, iov, out.empty() ? 1u : 2u);
      }, attr);
      return;
    }
    case kOpDestroy: {
      auto it = t_instances.find(w.instance);
      if (it == t_instances.end()) {
        set_status(reply, ESRCH);
        return;
      }
      ctx.deferred = true;
      const Runtime::RsrContext saved = ctx;
      std::shared_ptr<Instance> inst = it->second;
      t_instances.erase(it);
      lwt::ThreadAttr attr;
      attr.detached = true;
      attr.name = "sda-destroy";
      lwt::go([&rt, saved, inst] {
        lwt::LockGuard g(inst->mu);  // waits out in-flight methods
        inst->dying = true;
        inst->dtor(inst->state);
        inst->state = nullptr;
        reply_status(rt, saved, 0);
      }, attr);
      return;
    }
    default:
      set_status(reply, EINVAL);
      return;
  }
}

SdaRef SdaBase::create_instance(Runtime& rt, int pe, int process) {
  SdaWire w{kOpCreate, handler_id_, 0, 0};
  const auto rep = rt.call(pe, process, handler_id_, &w, sizeof w);
  SdaReplyWire rw{EINVAL, -1};
  if (rep.size() >= sizeof rw) std::memcpy(&rw, rep.data(), sizeof rw);
  if (rw.status != 0) {
    throw std::runtime_error("chant: SDA create failed");
  }
  return SdaRef{pe, process, rw.instance};
}

std::vector<std::uint8_t> SdaBase::strip_reply(
    std::vector<std::uint8_t> framed) {
  SdaReplyWire rw{EINVAL, -1};
  if (framed.size() >= sizeof rw) std::memcpy(&rw, framed.data(), sizeof rw);
  if (rw.status != 0) {
    throw std::runtime_error("chant: SDA invocation failed (status " +
                             std::to_string(rw.status) + ")");
  }
  return std::vector<std::uint8_t>(framed.begin() + sizeof rw, framed.end());
}

std::vector<std::uint8_t> SdaBase::invoke_raw(Runtime& rt, const SdaRef& ref,
                                              int method, const void* arg,
                                              std::size_t len) {
  return strip_reply(
      rt.call_wait(invoke_async_raw(rt, ref, method, arg, len)));
}

int SdaBase::invoke_async_raw(Runtime& rt, const SdaRef& ref, int method,
                              const void* arg, std::size_t len) {
  if (!ref.valid()) {
    throw std::invalid_argument("chant: invalid SDA reference");
  }
  // {SdaWire header, argument bytes} ship as one gather descriptor — no
  // marshal vector; call_async returns once both buffers are reusable.
  SdaWire w{kOpInvoke, handler_id_, ref.instance, method};
  const nx::IoVec iov[2] = {{&w, sizeof w}, {arg, len}};
  return rt.call_asyncv(ref.pe, ref.process, handler_id_, iov,
                        len > 0 ? 2u : 1u);
}

void SdaBase::destroy_instance(Runtime& rt, const SdaRef& ref) {
  if (!ref.valid()) return;
  SdaWire w{kOpDestroy, handler_id_, ref.instance, 0};
  const auto rep = rt.call(ref.pe, ref.process, handler_id_, &w, sizeof w);
  SdaReplyWire rw{EINVAL, -1};
  if (rep.size() >= sizeof rw) std::memcpy(&rw, rep.data(), sizeof rw);
  if (rw.status != 0) {
    throw std::runtime_error("chant: SDA destroy failed");
  }
}

std::size_t SdaBase::local_instances(Runtime&) { return t_instances.size(); }

}  // namespace chant::detail
