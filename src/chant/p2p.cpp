// p2p.cpp — point-to-point message passing between global threads
// (paper §3.1): naming via the tag codec, delivery via header matching,
// blocking via the configured polling policy.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "chant/hb.hpp"
#include "chant/runtime.hpp"
#include "chant/validate.hpp"

namespace chant {

MsgInfo Runtime::decode(const nx::MsgHeader& h) const {
  // Send → matched-receive edge: merge the sender's clock into the
  // consuming fiber (decode is the single funnel for received headers).
  hb::msg_delivered(h.hb_clk);
  MsgInfo mi;
  mi.src = Gid{h.src_pe, h.src_proc, codec_.decode_src_lid(h)};
  mi.user_tag = codec_.decode_user_tag(h);
  mi.len = h.len;
  if (h.peer_gone)
    mi.status = StatusCode::PeerGone;
  else
    mi.status = h.truncated ? StatusCode::Truncated : StatusCode::Ok;
  return mi;
}

void Runtime::send_from(int src_lid, int user_tag, const void* buf,
                        std::size_t len, const Gid& dst, bool internal) {
  const TagCodec::Wire wire =
      codec_.encode(dst.thread, src_lid, user_tag, internal);
  hb::on_read(buf, len, "chant::send payload");
  WaitCtx w;
  w.ep = &ep_;
  w.nxh = ep_.isend(dst.pe, dst.process, wire.tag, buf, len, wire.channel);
  if (wait_test(&w)) return;  // eager / posted-receive: buffer reusable now
  // Rendezvous: the receiver has not yet taken the payload. Sends are not
  // cancellation points (cancelling mid-rendezvous would let the receiver
  // copy from a dead buffer), so mask cancellation for the wait.
  const bool prev = sched_.set_cancel_enabled(false);
  block_until(w);
  sched_.set_cancel_enabled(prev);
}

void Runtime::send_from(int src_lid, int user_tag, const nx::IoVec* iov,
                        std::size_t iovcnt, const Gid& dst, bool internal) {
  const TagCodec::Wire wire =
      codec_.encode(dst.thread, src_lid, user_tag, internal);
  for (std::size_t i = 0; i < iovcnt; ++i) {
    hb::on_read(iov[i].base, iov[i].len, "chant::send payload");
  }
  WaitCtx w;
  w.ep = &ep_;
  w.nxh = ep_.isendv(dst.pe, dst.process, wire.tag, iov, iovcnt,
                     wire.channel);
  if (wait_test(&w)) return;  // all fragments gathered: buffers reusable
  const bool prev = sched_.set_cancel_enabled(false);
  block_until(w);
  sched_.set_cancel_enabled(prev);
}

void Runtime::send(int user_tag, const void* buf, std::size_t len,
                   const Gid& dst) {
  if (user_tag < 0 || user_tag > codec_.max_user_tag()) {
    throw std::invalid_argument("chant::send: user tag out of range");
  }
  if (is_any(dst) || dst.thread < 0 || dst.thread > codec_.max_lid()) {
    throw std::invalid_argument("chant::send: bad destination thread");
  }
  const int me = current_lid();
  if (me < 0) {
    throw std::logic_error("chant::send: calling fiber has no thread id");
  }
  send_from(me, user_tag, buf, len, dst, /*internal=*/false);
}

nx::Handle Runtime::post_recv(int user_tag, void* buf, std::size_t cap,
                              const Gid& src, bool internal) {
  const int me = current_lid();
  if (me < 0) {
    throw std::logic_error("chant::recv: calling fiber has no thread id");
  }
  const int src_lid = is_any(src) ? -1 : src.thread;
  const TagCodec::Pattern pat =
      codec_.pattern(me, src_lid, user_tag, internal);
  const int src_pe = is_any(src) ? nx::kAnyPe : src.pe;
  const int src_proc = is_any(src) ? nx::kAnyProc : src.process;
  return ep_.irecv(src_pe, src_proc, pat.tag, pat.tag_mask, buf, cap,
                   pat.channel, pat.channel_mask);
}

MsgInfo Runtime::recv_blocking(int user_tag, void* buf, std::size_t cap,
                               const Gid& src, bool internal) {
  WaitCtx w;
  w.ep = &ep_;
  w.nxh = post_recv(user_tag, buf, cap, src, internal);
  try {
    block_until(w);
  } catch (...) {
    // Cancelled mid-receive: withdraw the posted receive so a later
    // message cannot scribble into a dead buffer.
    if (!w.done) ep_.cancel_recv(w.nxh);
    throw;
  }
  const MsgInfo mi = decode(w.hdr);
  hb::on_write(buf, mi.len < cap ? mi.len : cap, "chant::recv payload");
  return mi;
}

MsgInfo Runtime::recv(int user_tag, void* buf, std::size_t cap,
                      const Gid& src) {
  if (user_tag != kAnyUserTag &&
      (user_tag < 0 || user_tag > codec_.max_user_tag())) {
    throw std::invalid_argument("chant::recv: user tag out of range");
  }
  validate::check_blocking("chant::Runtime::recv", /*timed=*/false);
  return recv_blocking(user_tag, buf, cap, src, /*internal=*/false);
}

Status Runtime::recv(int user_tag, void* buf, std::size_t cap,
                     const Gid& src, Deadline deadline, MsgInfo* out) {
  if (user_tag != kAnyUserTag &&
      (user_tag < 0 || user_tag > codec_.max_user_tag())) {
    throw std::invalid_argument("chant::recv: user tag out of range");
  }
  WaitCtx w;
  w.ep = &ep_;
  w.nxh = post_recv(user_tag, buf, cap, src, /*internal=*/false);
  bool completed = false;
  try {
    completed = block_until(w, resolve_deadline(deadline));
  } catch (...) {
    if (!w.done) ep_.cancel_recv(w.nxh);
    throw;
  }
  if (!completed) {
    // Completion wins the race: a message delivered in the cancellation
    // window is harvested through the cancel path instead of dropped.
    if (ep_.cancel_recv(w.nxh, &w.hdr)) {
      ++rsr_stats_.deadline_timeouts;
      return StatusCode::DeadlineExceeded;
    }
  }
  const MsgInfo mi = decode(w.hdr);
  hb::on_write(buf, mi.len < cap ? mi.len : cap, "chant::recv payload");
  if (out != nullptr) *out = mi;
  return mi.status;
}

// --------------------------------------------------- nonblocking receives

int Runtime::irecv(int user_tag, void* buf, std::size_t cap, const Gid& src) {
  if (user_tag != kAnyUserTag &&
      (user_tag < 0 || user_tag > codec_.max_user_tag())) {
    throw std::invalid_argument("chant::irecv: user tag out of range");
  }
  std::uint32_t idx;
  if (!free_reqs_.empty()) {
    idx = free_reqs_.back();
    free_reqs_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(reqs_.size());
    reqs_.emplace_back();
  }
  ChantReq& r = reqs_[idx];
  r.active = true;
  r.wait = WaitCtx{};
  r.wait.ep = &ep_;
  r.wait.nxh = post_recv(user_tag, buf, cap, src, /*internal=*/false);
  // 15 generation bits keep the handle non-negative across slot reuse.
  return static_cast<int>(((r.gen & 0x7FFFu) << 16) | idx);
}

namespace {
constexpr std::uint32_t kReqIdxMask = 0xFFFFu;
constexpr std::uint32_t kReqGenMask = 0x7FFFu;
}

bool Runtime::msgtest(int handle, MsgInfo* out) {
  const auto idx = static_cast<std::uint32_t>(handle) & kReqIdxMask;
  const auto gen = static_cast<std::uint32_t>(handle) >> 16;
  if (idx >= reqs_.size() || (reqs_[idx].gen & kReqGenMask) != gen ||
      !reqs_[idx].active) {
    throw std::invalid_argument("chant::msgtest: stale or invalid handle");
  }
  ChantReq& r = reqs_[idx];
  if (!wait_test(&r.wait)) return false;
  if (out != nullptr) *out = decode(r.wait.hdr);
  sel_notify_req_retired(r);
  r.active = false;
  ++r.gen;
  free_reqs_.push_back(idx);
  return true;
}

Status Runtime::cancel_irecv(int handle) {
  const auto idx = static_cast<std::uint32_t>(handle) & kReqIdxMask;
  const auto gen = static_cast<std::uint32_t>(handle) >> 16;
  if (handle < 0 || idx >= reqs_.size()) return StatusCode::Invalid;
  ChantReq& r = reqs_[idx];
  if ((r.gen & kReqGenMask) != gen || !r.active) {
    // The handle was already retired (msgtest/msgwait completion or a
    // previous cancel): cancelling again is an idempotent no-op.
    return StatusCode::AlreadyCompleted;
  }
  // Deregister from any Selector BEFORE the receive is withdrawn: the
  // nx handle must still be live for the waiter (and any queued fire)
  // to be cleared, or a racing completion could fire into a retired
  // registration.
  sel_notify_req_retired(r);
  const bool withdrawn = !r.wait.done && ep_.cancel_recv(r.wait.nxh);
  r.active = false;
  ++r.gen;
  free_reqs_.push_back(idx);
  return withdrawn ? StatusCode::Ok : StatusCode::AlreadyCompleted;
}

MsgInfo Runtime::msgwait(int handle) {
  validate::check_blocking("chant::Runtime::msgwait", /*timed=*/false);
  const auto idx = static_cast<std::uint32_t>(handle) & kReqIdxMask;
  const auto gen = static_cast<std::uint32_t>(handle) >> 16;
  if (idx >= reqs_.size() || (reqs_[idx].gen & kReqGenMask) != gen ||
      !reqs_[idx].active) {
    throw std::invalid_argument("chant::msgwait: stale or invalid handle");
  }
  ChantReq& r = reqs_[idx];
  try {
    block_until(r.wait);
  } catch (...) {
    // Retire the handle whether or not the receive completed: a
    // cancellation that raced with completion abandons the message, and
    // leaving the slot active would leak it (and skew outstanding_recvs).
    sel_notify_req_retired(r);
    if (!r.wait.done) ep_.cancel_recv(r.wait.nxh);
    r.active = false;
    ++r.gen;
    free_reqs_.push_back(idx);
    throw;
  }
  MsgInfo mi = decode(r.wait.hdr);
  sel_notify_req_retired(r);
  r.active = false;
  ++r.gen;
  free_reqs_.push_back(idx);
  return mi;
}

Status Runtime::msgwait(int handle, Deadline deadline, MsgInfo* out) {
  const auto idx = static_cast<std::uint32_t>(handle) & kReqIdxMask;
  const auto gen = static_cast<std::uint32_t>(handle) >> 16;
  if (idx >= reqs_.size() || (reqs_[idx].gen & kReqGenMask) != gen ||
      !reqs_[idx].active) {
    throw std::invalid_argument("chant::msgwait: stale or invalid handle");
  }
  ChantReq& r = reqs_[idx];
  bool completed = false;
  try {
    completed = block_until(r.wait, resolve_deadline(deadline));
  } catch (...) {
    // Retire unconditionally (see the untimed overload above): a
    // cancellation/completion race must not leak the reqs_ slot.
    sel_notify_req_retired(r);
    if (!r.wait.done) ep_.cancel_recv(r.wait.nxh);
    r.active = false;
    ++r.gen;
    free_reqs_.push_back(idx);
    throw;
  }
  if (!completed) {
    // The receive stays posted and the handle stays live: the caller
    // explicitly owns it (irecv) and may wait again or cancel_irecv —
    // any Selector registration stays armed too.
    ++rsr_stats_.deadline_timeouts;
    return StatusCode::DeadlineExceeded;
  }
  const MsgInfo mi = decode(r.wait.hdr);
  if (out != nullptr) *out = mi;
  sel_notify_req_retired(r);
  r.active = false;
  ++r.gen;
  free_reqs_.push_back(idx);
  return mi.status;
}

}  // namespace chant
