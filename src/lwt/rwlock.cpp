// rwlock.cpp — writer-preferring reader/writer lock for fibers.
#include "lwt/rwlock.hpp"

#include <cstdio>
#include <cstdlib>

#include "lwt/validate.hpp"

namespace lwt {

namespace {
Scheduler& sched() {
  Scheduler* s = Scheduler::current();
  if (s == nullptr) {
    std::fprintf(stderr, "lwt: RwLock used outside a scheduler\n");
    std::abort();
  }
  return *s;
}
}  // namespace

void RwLock::lock_shared() {
  Scheduler& s = sched();
  s.check_cancel();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(Scheduler::self(), "lwt::RwLock::lock_shared", false);
  }
  while (writer_ != nullptr || !waiting_writers_.empty()) {
    s.park_on(waiting_readers_);
    s.check_cancel();
  }
  ++readers_;
  if (const auto* h = validate_hooks()) {
    h->lock_acquired(Scheduler::self(), this, "RwLock(R)");
  }
}

bool RwLock::try_lock_shared() {
  if (writer_ != nullptr || !waiting_writers_.empty()) return false;
  ++readers_;
  if (const auto* h = validate_hooks()) {
    h->lock_acquired(Scheduler::self(), this, "RwLock(R)");
  }
  return true;
}

bool RwLock::try_lock_shared_until(std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(Scheduler::self(), "lwt::RwLock::try_lock_shared_until",
                     true);
  }
  while (writer_ != nullptr || !waiting_writers_.empty()) {
    if (!s.park_on_until(waiting_readers_, deadline_ns)) return false;
    s.check_cancel();
  }
  ++readers_;
  if (const auto* h = validate_hooks()) {
    h->lock_acquired(Scheduler::self(), this, "RwLock(R)");
  }
  return true;
}

void RwLock::unlock_shared() {
  if (readers_ <= 0) {
    std::fprintf(stderr, "lwt: unlock_shared without shared lock\n");
    std::abort();
  }
  if (const auto* h = validate_hooks()) {
    h->lock_released(Scheduler::self(), this);
  }
  if (--readers_ == 0) wake_next();
}

void RwLock::lock() {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::RwLock::lock", false);
  }
  while (writer_ != nullptr || readers_ > 0) {
    s.park_on(waiting_writers_);
    s.check_cancel();
  }
  writer_ = me;
  if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "RwLock(W)");
}

bool RwLock::try_lock() {
  if (writer_ != nullptr || readers_ > 0) return false;
  writer_ = Scheduler::self();
  if (const auto* h = validate_hooks()) {
    h->lock_acquired(writer_, this, "RwLock(W)");
  }
  return true;
}

bool RwLock::try_lock_until(std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::RwLock::try_lock_until", true);
  }
  while (writer_ != nullptr || readers_ > 0) {
    if (!s.park_on_until(waiting_writers_, deadline_ns)) {
      // If this was the last queued writer and the lock is held only by
      // readers, parked readers are released by the readers' eventual
      // unlock via wake_next(); nothing to do here.
      return false;
    }
    s.check_cancel();
  }
  writer_ = me;
  if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "RwLock(W)");
  return true;
}

void RwLock::unlock() {
  if (writer_ != Scheduler::self()) {
    std::fprintf(stderr, "lwt: RwLock::unlock by non-writer\n");
    std::abort();
  }
  writer_ = nullptr;
  if (const auto* h = validate_hooks()) {
    h->lock_released(Scheduler::self(), this);
  }
  wake_next();
}

void RwLock::wake_next() {
  Scheduler& s = sched();
  // Prefer a waiting writer; otherwise release the whole reader herd.
  if (s.wake_one(waiting_writers_) != nullptr) return;
  s.wake_all(waiting_readers_);
}

}  // namespace lwt
