// rwlock.cpp — writer-preferring reader/writer lock for fibers.
//
// All check-then-park sequences run under the scheduler's wait lock
// (SyncGuard), so a release on one worker cannot slip between another
// worker's predicate check and its park; see sync.cpp for the pattern.
// The happens-before checker models the RwLock as a single clock
// (readers are conservatively ordered with each other); ownership is a
// multiset so the wait-for graph can point a blocked writer at every
// current reader.
#include "lwt/rwlock.hpp"

#include <cstdio>
#include <cstdlib>

#include "lwt/hb.hpp"
#include "lwt/validate.hpp"

namespace lwt {

namespace {
Scheduler& sched() {
  Scheduler* s = Scheduler::current();
  if (s == nullptr) {
    std::fprintf(stderr, "lwt: RwLock used outside a scheduler\n");
    std::abort();
  }
  return *s;
}
}  // namespace

void RwLock::lock_shared() {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::RwLock::lock_shared", false);
  }
  const HbHooks* hb = hb_hooks();
  if (hb != nullptr) hb->wait_begin(me, this, "lwt::RwLock::lock_shared", false);
  Scheduler::SyncGuard g(s);
  try {
    while (writer_.load(std::memory_order_relaxed) != nullptr ||
           !waiting_writers_.empty()) {
      s.park_on(waiting_readers_, g);
      g.lock();
      s.check_cancel();
    }
  } catch (...) {
    if (hb != nullptr) hb->wait_end(me);
    throw;
  }
  readers_.fetch_add(1, std::memory_order_relaxed);
  g.unlock();
  if (hb != nullptr) {
    hb->wait_end(me);
    hb->lock_acquired(me, this, "RwLock(R)");
  }
  if (const auto* h = validate_hooks()) {
    h->lock_acquired(me, this, "RwLock(R)");
  }
}

bool RwLock::try_lock_shared() {
  Scheduler& s = sched();
  Scheduler::SyncGuard g(s);
  if (writer_.load(std::memory_order_relaxed) != nullptr ||
      !waiting_writers_.empty()) {
    return false;
  }
  readers_.fetch_add(1, std::memory_order_relaxed);
  g.unlock();
  if (const auto* hb = hb_hooks()) {
    hb->lock_acquired(Scheduler::self(), this, "RwLock(R)");
  }
  if (const auto* h = validate_hooks()) {
    h->lock_acquired(Scheduler::self(), this, "RwLock(R)");
  }
  return true;
}

bool RwLock::try_lock_shared_until(std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::RwLock::try_lock_shared_until", true);
  }
  const HbHooks* hb = hb_hooks();
  if (hb != nullptr) {
    hb->wait_begin(me, this, "lwt::RwLock::try_lock_shared_until", true);
  }
  Scheduler::SyncGuard g(s);
  try {
    while (writer_.load(std::memory_order_relaxed) != nullptr ||
           !waiting_writers_.empty()) {
      if (!s.park_on_until(waiting_readers_, deadline_ns, g)) {
        if (hb != nullptr) hb->wait_end(me);
        return false;
      }
      g.lock();
      s.check_cancel();
    }
  } catch (...) {
    if (hb != nullptr) hb->wait_end(me);
    throw;
  }
  readers_.fetch_add(1, std::memory_order_relaxed);
  g.unlock();
  if (hb != nullptr) {
    hb->wait_end(me);
    hb->lock_acquired(me, this, "RwLock(R)");
  }
  if (const auto* h = validate_hooks()) {
    h->lock_acquired(me, this, "RwLock(R)");
  }
  return true;
}

void RwLock::unlock_shared() {
  Scheduler& s = sched();
  if (readers_.load(std::memory_order_relaxed) <= 0) {
    std::fprintf(stderr, "lwt: unlock_shared without shared lock\n");
    std::abort();
  }
  if (const auto* hb = hb_hooks()) {
    hb->lock_released(Scheduler::self(), this);
  }
  if (const auto* h = validate_hooks()) {
    h->lock_released(Scheduler::self(), this);
  }
  Scheduler::SyncGuard g(s);
  if (readers_.fetch_sub(1, std::memory_order_relaxed) == 1) {
    wake_next(s, g);
  }
}

void RwLock::lock() {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::RwLock::lock", false);
  }
  const HbHooks* hb = hb_hooks();
  if (hb != nullptr) hb->wait_begin(me, this, "lwt::RwLock::lock", false);
  Scheduler::SyncGuard g(s);
  try {
    while (writer_.load(std::memory_order_relaxed) != nullptr ||
           readers_.load(std::memory_order_relaxed) > 0) {
      s.park_on(waiting_writers_, g);
      g.lock();
      s.check_cancel();
    }
  } catch (...) {
    if (hb != nullptr) hb->wait_end(me);
    throw;
  }
  writer_.store(me, std::memory_order_relaxed);
  g.unlock();
  if (hb != nullptr) {
    hb->wait_end(me);
    hb->lock_acquired(me, this, "RwLock(W)");
  }
  if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "RwLock(W)");
}

bool RwLock::try_lock() {
  Scheduler& s = sched();
  Tcb* me = Scheduler::self();
  Scheduler::SyncGuard g(s);
  if (writer_.load(std::memory_order_relaxed) != nullptr ||
      readers_.load(std::memory_order_relaxed) > 0) {
    return false;
  }
  writer_.store(me, std::memory_order_relaxed);
  g.unlock();
  if (const auto* hb = hb_hooks()) hb->lock_acquired(me, this, "RwLock(W)");
  if (const auto* h = validate_hooks()) {
    h->lock_acquired(me, this, "RwLock(W)");
  }
  return true;
}

bool RwLock::try_lock_until(std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::RwLock::try_lock_until", true);
  }
  const HbHooks* hb = hb_hooks();
  if (hb != nullptr) {
    hb->wait_begin(me, this, "lwt::RwLock::try_lock_until", true);
  }
  Scheduler::SyncGuard g(s);
  try {
    while (writer_.load(std::memory_order_relaxed) != nullptr ||
           readers_.load(std::memory_order_relaxed) > 0) {
      if (!s.park_on_until(waiting_writers_, deadline_ns, g)) {
        // If this was the last queued writer and the lock is held only
        // by readers, parked readers are released by the readers'
        // eventual unlock via wake_next(); nothing to do here.
        if (hb != nullptr) hb->wait_end(me);
        return false;
      }
      g.lock();
      s.check_cancel();
    }
  } catch (...) {
    if (hb != nullptr) hb->wait_end(me);
    throw;
  }
  writer_.store(me, std::memory_order_relaxed);
  g.unlock();
  if (hb != nullptr) {
    hb->wait_end(me);
    hb->lock_acquired(me, this, "RwLock(W)");
  }
  if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "RwLock(W)");
  return true;
}

void RwLock::unlock() {
  Scheduler& s = sched();
  if (writer_.load(std::memory_order_relaxed) != Scheduler::self()) {
    std::fprintf(stderr, "lwt: RwLock::unlock by non-writer\n");
    std::abort();
  }
  if (const auto* hb = hb_hooks()) {
    hb->lock_released(Scheduler::self(), this);
  }
  if (const auto* h = validate_hooks()) {
    h->lock_released(Scheduler::self(), this);
  }
  Scheduler::SyncGuard g(s);
  writer_.store(nullptr, std::memory_order_relaxed);
  wake_next(s, g);
}

void RwLock::wake_next(Scheduler& s, Scheduler::SyncGuard& g) {
  // Prefer a waiting writer; otherwise release the whole reader herd.
  if (s.wake_one(waiting_writers_, g) != nullptr) return;
  s.wake_all(waiting_readers_, g);
}

}  // namespace lwt
