// rwlock.cpp — writer-preferring reader/writer lock for fibers.
#include "lwt/rwlock.hpp"

#include <cstdio>
#include <cstdlib>

namespace lwt {

namespace {
Scheduler& sched() {
  Scheduler* s = Scheduler::current();
  if (s == nullptr) {
    std::fprintf(stderr, "lwt: RwLock used outside a scheduler\n");
    std::abort();
  }
  return *s;
}
}  // namespace

void RwLock::lock_shared() {
  Scheduler& s = sched();
  s.check_cancel();
  while (writer_ != nullptr || !waiting_writers_.empty()) {
    s.park_on(waiting_readers_);
    s.check_cancel();
  }
  ++readers_;
}

bool RwLock::try_lock_shared() {
  if (writer_ != nullptr || !waiting_writers_.empty()) return false;
  ++readers_;
  return true;
}

bool RwLock::try_lock_shared_until(std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  while (writer_ != nullptr || !waiting_writers_.empty()) {
    if (!s.park_on_until(waiting_readers_, deadline_ns)) return false;
    s.check_cancel();
  }
  ++readers_;
  return true;
}

void RwLock::unlock_shared() {
  if (readers_ <= 0) {
    std::fprintf(stderr, "lwt: unlock_shared without shared lock\n");
    std::abort();
  }
  if (--readers_ == 0) wake_next();
}

void RwLock::lock() {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  while (writer_ != nullptr || readers_ > 0) {
    s.park_on(waiting_writers_);
    s.check_cancel();
  }
  writer_ = me;
}

bool RwLock::try_lock() {
  if (writer_ != nullptr || readers_ > 0) return false;
  writer_ = Scheduler::self();
  return true;
}

bool RwLock::try_lock_until(std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  while (writer_ != nullptr || readers_ > 0) {
    if (!s.park_on_until(waiting_writers_, deadline_ns)) {
      // If this was the last queued writer and the lock is held only by
      // readers, parked readers are released by the readers' eventual
      // unlock via wake_next(); nothing to do here.
      return false;
    }
    s.check_cancel();
  }
  writer_ = me;
  return true;
}

void RwLock::unlock() {
  if (writer_ != Scheduler::self()) {
    std::fprintf(stderr, "lwt: RwLock::unlock by non-writer\n");
    std::abort();
  }
  writer_ = nullptr;
  wake_next();
}

void RwLock::wake_next() {
  Scheduler& s = sched();
  // Prefer a waiting writer; otherwise release the whole reader herd.
  if (s.wake_one(waiting_writers_) != nullptr) return;
  s.wake_all(waiting_readers_);
}

}  // namespace lwt
