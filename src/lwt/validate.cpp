// validate.cpp — storage for the validator hook table (lwt/validate.hpp).
#include "lwt/validate.hpp"

namespace lwt {

std::atomic<const ValidateHooks*> g_validate_hooks{nullptr};

}  // namespace lwt
