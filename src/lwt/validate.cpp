// validate.cpp — storage for the validator and happens-before hook
// tables (lwt/validate.hpp, lwt/hb.hpp).
#include "lwt/hb.hpp"
#include "lwt/validate.hpp"

namespace lwt {

std::atomic<const ValidateHooks*> g_validate_hooks{nullptr};
std::atomic<const HbHooks*> g_hb_hooks{nullptr};

}  // namespace lwt
