// sync.cpp — fiber mutex / condition variable / semaphore / barrier.
//
// Every check-then-park sequence runs under the scheduler's wait lock
// (Scheduler::SyncGuard): with multiple workers, a wake from another
// worker could otherwise slip between the predicate check and the park
// and be lost. park_on(wl, guard) transfers the lock to the scheduler,
// which releases it only after the parking fiber has switched out, so
// the release-and-park is atomic with respect to wakers. Single-worker
// runs pay one uncontended spinlock pair per operation.
#include "lwt/sync.hpp"

#include <cstdio>
#include <cstdlib>

#include "lwt/validate.hpp"

namespace lwt {

namespace {
Scheduler& sched() {
  Scheduler* s = Scheduler::current();
  if (s == nullptr) {
    std::fprintf(stderr, "lwt: sync primitive used outside a scheduler\n");
    std::abort();
  }
  return *s;
}
}  // namespace

// ------------------------------------------------------------------ Mutex

void Mutex::lock() {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (owner_.load(std::memory_order_relaxed) == me) {
    std::fprintf(stderr, "lwt: recursive Mutex::lock by #%u '%s'\n", me->id,
                 me->name);
    std::abort();
  }
  if (const auto* h = validate_hooks()) h->blocking_call(me, "lwt::Mutex::lock", false);
  Scheduler::SyncGuard g(s);
  while (owner_.load(std::memory_order_relaxed) != nullptr) {
    s.park_on(waiters_, g);  // returns with the guard released
    g.lock();
    s.check_cancel();  // cancel() may have ejected us from the wait list
  }
  owner_.store(me, std::memory_order_relaxed);
  g.unlock();
  if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "Mutex");
}

bool Mutex::try_lock() {
  Scheduler& s = sched();
  Tcb* me = Scheduler::self();
  Scheduler::SyncGuard g(s);
  if (owner_.load(std::memory_order_relaxed) != nullptr) return false;
  owner_.store(me, std::memory_order_relaxed);
  g.unlock();
  if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "Mutex");
  return true;
}

bool Mutex::try_lock_until(std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (owner_.load(std::memory_order_relaxed) == me) {
    std::fprintf(stderr, "lwt: recursive Mutex::try_lock_until by #%u '%s'\n",
                 me->id, me->name);
    std::abort();
  }
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::Mutex::try_lock_until", true);
  }
  Scheduler::SyncGuard g(s);
  while (owner_.load(std::memory_order_relaxed) != nullptr) {
    if (!s.park_on_until(waiters_, deadline_ns, g)) return false;
    g.lock();
    s.check_cancel();  // cancel() may have ejected us from the wait list
  }
  owner_.store(me, std::memory_order_relaxed);
  g.unlock();
  if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "Mutex");
  return true;
}

bool Mutex::try_lock_for(std::uint64_t ns) {
  return try_lock_until(sched().deadline_after(ns));
}

void Mutex::unlock() {
  Scheduler& s = sched();
  Tcb* me = Scheduler::self();
  if (owner_.load(std::memory_order_relaxed) != me) {
    std::fprintf(stderr, "lwt: Mutex::unlock by non-owner\n");
    std::abort();
  }
  if (const auto* h = validate_hooks()) h->lock_released(me, this);
  Scheduler::SyncGuard g(s);
  owner_.store(nullptr, std::memory_order_relaxed);
  s.wake_one(waiters_, g);
}

// ---------------------------------------------------------------- CondVar

void CondVar::wait(Mutex& m) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (m.owner_.load(std::memory_order_relaxed) != me) {
    std::fprintf(stderr, "lwt: CondVar::wait without holding the mutex\n");
    std::abort();
  }
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::CondVar::wait", false);
    h->lock_released(me, &m);
  }
  // Release and park under one hold of the wait lock: a signal between
  // them cannot be lost, from any worker.
  Scheduler::SyncGuard g(s);
  m.owner_.store(nullptr, std::memory_order_relaxed);
  s.wake_one(m.waiters_, g);
  try {
    s.park_on(waiters_, g);
    s.check_cancel();
  } catch (...) {
    m.lock();  // pthreads semantics: reacquire before acting on cancel
    throw;
  }
  m.lock();
}

bool CondVar::wait_until(Mutex& m, std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (m.owner_.load(std::memory_order_relaxed) != me) {
    std::fprintf(stderr,
                 "lwt: CondVar::wait_until without holding the mutex\n");
    std::abort();
  }
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::CondVar::wait_until", true);
    h->lock_released(me, &m);
  }
  Scheduler::SyncGuard g(s);
  m.owner_.store(nullptr, std::memory_order_relaxed);
  s.wake_one(m.waiters_, g);
  bool signaled;
  try {
    signaled = s.park_on_until(waiters_, deadline_ns, g);
    s.check_cancel();
  } catch (...) {
    m.lock();  // pthreads semantics: reacquire before acting on cancel
    throw;
  }
  m.lock();
  return signaled;
}

void CondVar::signal() { sched().wake_one(waiters_); }

void CondVar::broadcast() { sched().wake_all(waiters_); }

// -------------------------------------------------------------- Semaphore

void Semaphore::acquire() {
  Scheduler& s = sched();
  s.check_cancel();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(Scheduler::self(), "lwt::Semaphore::acquire", false);
  }
  Scheduler::SyncGuard g(s);
  while (count_.load(std::memory_order_relaxed) <= 0) {
    s.park_on(waiters_, g);
    g.lock();
    s.check_cancel();
  }
  count_.fetch_sub(1, std::memory_order_relaxed);
}

bool Semaphore::try_acquire() {
  Scheduler& s = sched();
  Scheduler::SyncGuard g(s);
  if (count_.load(std::memory_order_relaxed) <= 0) return false;
  count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool Semaphore::try_acquire_until(std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  Scheduler::SyncGuard g(s);
  while (count_.load(std::memory_order_relaxed) <= 0) {
    if (!s.park_on_until(waiters_, deadline_ns, g)) return false;
    g.lock();
    s.check_cancel();
  }
  count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void Semaphore::release(std::int64_t n) {
  Scheduler& s = sched();
  Scheduler::SyncGuard g(s);
  count_.fetch_add(n, std::memory_order_relaxed);
  // Mesa-style: wake as many waiters as units released; each re-checks.
  for (std::int64_t i = 0; i < n; ++i) {
    if (s.wake_one(waiters_, g) == nullptr) break;
  }
}

// ---------------------------------------------------------------- Barrier

bool Barrier::arrive_and_wait() {
  Scheduler& s = sched();
  s.check_cancel();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(Scheduler::self(), "lwt::Barrier::arrive_and_wait",
                     false);
  }
  Scheduler::SyncGuard g(s);
  const std::uint64_t gen = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    s.wake_all(waiters_, g);
    return true;
  }
  while (generation_ == gen) {
    s.park_on(waiters_, g);
    g.lock();
    s.check_cancel();
  }
  return false;
}

}  // namespace lwt
