// sync.cpp — fiber mutex / condition variable / semaphore / barrier.
#include "lwt/sync.hpp"

#include <cstdio>
#include <cstdlib>

#include "lwt/validate.hpp"

namespace lwt {

namespace {
Scheduler& sched() {
  Scheduler* s = Scheduler::current();
  if (s == nullptr) {
    std::fprintf(stderr, "lwt: sync primitive used outside a scheduler\n");
    std::abort();
  }
  return *s;
}
}  // namespace

// ------------------------------------------------------------------ Mutex

void Mutex::lock() {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (owner_ == me) {
    std::fprintf(stderr, "lwt: recursive Mutex::lock by #%u '%s'\n", me->id,
                 me->name);
    std::abort();
  }
  if (const auto* h = validate_hooks()) h->blocking_call(me, "lwt::Mutex::lock", false);
  while (owner_ != nullptr) {
    s.park_on(waiters_);
    s.check_cancel();  // cancel() may have ejected us from the wait list
  }
  owner_ = me;
  if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "Mutex");
}

bool Mutex::try_lock() {
  if (owner_ != nullptr) return false;
  owner_ = Scheduler::self();
  if (const auto* h = validate_hooks()) h->lock_acquired(owner_, this, "Mutex");
  return true;
}

bool Mutex::try_lock_until(std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (owner_ == me) {
    std::fprintf(stderr, "lwt: recursive Mutex::try_lock_until by #%u '%s'\n",
                 me->id, me->name);
    std::abort();
  }
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::Mutex::try_lock_until", true);
  }
  while (owner_ != nullptr) {
    if (!s.park_on_until(waiters_, deadline_ns)) return false;
    s.check_cancel();  // cancel() may have ejected us from the wait list
  }
  owner_ = me;
  if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "Mutex");
  return true;
}

bool Mutex::try_lock_for(std::uint64_t ns) {
  return try_lock_until(sched().deadline_after(ns));
}

void Mutex::unlock() {
  Tcb* me = Scheduler::self();
  if (owner_ != me) {
    std::fprintf(stderr, "lwt: Mutex::unlock by non-owner\n");
    std::abort();
  }
  owner_ = nullptr;
  if (const auto* h = validate_hooks()) h->lock_released(me, this);
  sched().wake_one(waiters_);
}

// ---------------------------------------------------------------- CondVar

void CondVar::wait(Mutex& m) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (m.owner_ != me) {
    std::fprintf(stderr, "lwt: CondVar::wait without holding the mutex\n");
    std::abort();
  }
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::CondVar::wait", false);
    h->lock_released(me, &m);
  }
  // Atomic with respect to fibers: no scheduling point between releasing
  // the mutex and parking, so a signal between them cannot be lost.
  m.owner_ = nullptr;
  s.wake_one(m.waiters_);
  try {
    s.park_on(waiters_);
    s.check_cancel();
  } catch (...) {
    m.lock();  // pthreads semantics: reacquire before acting on cancel
    throw;
  }
  m.lock();
}

bool CondVar::wait_until(Mutex& m, std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (m.owner_ != me) {
    std::fprintf(stderr,
                 "lwt: CondVar::wait_until without holding the mutex\n");
    std::abort();
  }
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::CondVar::wait_until", true);
    h->lock_released(me, &m);
  }
  m.owner_ = nullptr;
  s.wake_one(m.waiters_);
  bool signaled;
  try {
    signaled = s.park_on_until(waiters_, deadline_ns);
    s.check_cancel();
  } catch (...) {
    m.lock();  // pthreads semantics: reacquire before acting on cancel
    throw;
  }
  m.lock();
  return signaled;
}

void CondVar::signal() { sched().wake_one(waiters_); }

void CondVar::broadcast() { sched().wake_all(waiters_); }

// -------------------------------------------------------------- Semaphore

void Semaphore::acquire() {
  Scheduler& s = sched();
  s.check_cancel();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(Scheduler::self(), "lwt::Semaphore::acquire", false);
  }
  while (count_ <= 0) {
    s.park_on(waiters_);
    s.check_cancel();
  }
  --count_;
}

bool Semaphore::try_acquire() {
  if (count_ <= 0) return false;
  --count_;
  return true;
}

bool Semaphore::try_acquire_until(std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  while (count_ <= 0) {
    if (!s.park_on_until(waiters_, deadline_ns)) return false;
    s.check_cancel();
  }
  --count_;
  return true;
}

void Semaphore::release(std::int64_t n) {
  Scheduler& s = sched();
  count_ += n;
  // Mesa-style: wake as many waiters as units released; each re-checks.
  for (std::int64_t i = 0; i < n; ++i) {
    if (s.wake_one(waiters_) == nullptr) break;
  }
}

// ---------------------------------------------------------------- Barrier

bool Barrier::arrive_and_wait() {
  Scheduler& s = sched();
  s.check_cancel();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(Scheduler::self(), "lwt::Barrier::arrive_and_wait",
                     false);
  }
  const std::uint64_t gen = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    s.wake_all(waiters_);
    return true;
  }
  while (generation_ == gen) {
    s.park_on(waiters_);
    s.check_cancel();
  }
  return false;
}

}  // namespace lwt
