// sync.cpp — fiber mutex / condition variable / semaphore / barrier.
//
// Every check-then-park sequence runs under the scheduler's wait lock
// (Scheduler::SyncGuard): with multiple workers, a wake from another
// worker could otherwise slip between the predicate check and the park
// and be lost. park_on(wl, guard) transfers the lock to the scheduler,
// which releases it only after the parking fiber has switched out, so
// the release-and-park is atomic with respect to wakers. Single-worker
// runs pay one uncontended spinlock pair per operation.
//
// Hook discipline: validate/hb hooks fire outside the wait lock where
// possible (the checker takes its own mutex; holding the scheduler
// spinlock across it would serialize workers). A wait_begin with no
// matching wait_end (cancellation unwinding) is cleaned up by the
// checker's thread_exit handler.
#include "lwt/sync.hpp"

#include <cstdio>
#include <cstdlib>

#include "lwt/hb.hpp"
#include "lwt/validate.hpp"

namespace lwt {

namespace {
Scheduler& sched() {
  Scheduler* s = Scheduler::current();
  if (s == nullptr) {
    std::fprintf(stderr, "lwt: sync primitive used outside a scheduler\n");
    std::abort();
  }
  return *s;
}
}  // namespace

// ------------------------------------------------------------------ Mutex

void Mutex::lock() {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (owner_.load(std::memory_order_relaxed) == me) {
    std::fprintf(stderr, "lwt: recursive Mutex::lock by #%u '%s'\n", me->id,
                 me->name);
    std::abort();
  }
  if (const auto* h = validate_hooks()) h->blocking_call(me, "lwt::Mutex::lock", false);
  const HbHooks* hb = hb_hooks();
  if (hb != nullptr) hb->wait_begin(me, this, "lwt::Mutex::lock", false);
  Scheduler::SyncGuard g(s);
  try {
    while (owner_.load(std::memory_order_relaxed) != nullptr) {
      s.park_on(waiters_, g);  // returns with the guard released
      g.lock();
      s.check_cancel();  // cancel() may have ejected us from the wait list
    }
  } catch (...) {
    if (hb != nullptr) hb->wait_end(me);
    throw;
  }
  owner_.store(me, std::memory_order_relaxed);
  g.unlock();
  if (hb != nullptr) {
    hb->wait_end(me);
    hb->lock_acquired(me, this, "Mutex");
  }
  if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "Mutex");
}

bool Mutex::try_lock() {
  Scheduler& s = sched();
  Tcb* me = Scheduler::self();
  Scheduler::SyncGuard g(s);
  if (owner_.load(std::memory_order_relaxed) != nullptr) return false;
  owner_.store(me, std::memory_order_relaxed);
  g.unlock();
  if (const auto* hb = hb_hooks()) hb->lock_acquired(me, this, "Mutex");
  if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "Mutex");
  return true;
}

bool Mutex::try_lock_until(std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (owner_.load(std::memory_order_relaxed) == me) {
    std::fprintf(stderr, "lwt: recursive Mutex::try_lock_until by #%u '%s'\n",
                 me->id, me->name);
    std::abort();
  }
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::Mutex::try_lock_until", true);
  }
  const HbHooks* hb = hb_hooks();
  if (hb != nullptr) {
    hb->wait_begin(me, this, "lwt::Mutex::try_lock_until", true);
  }
  Scheduler::SyncGuard g(s);
  try {
    while (owner_.load(std::memory_order_relaxed) != nullptr) {
      if (!s.park_on_until(waiters_, deadline_ns, g)) {
        if (hb != nullptr) hb->wait_end(me);
        return false;
      }
      g.lock();
      s.check_cancel();  // cancel() may have ejected us from the wait list
    }
  } catch (...) {
    if (hb != nullptr) hb->wait_end(me);
    throw;
  }
  owner_.store(me, std::memory_order_relaxed);
  g.unlock();
  if (hb != nullptr) {
    hb->wait_end(me);
    hb->lock_acquired(me, this, "Mutex");
  }
  if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "Mutex");
  return true;
}

bool Mutex::try_lock_for(std::uint64_t ns) {
  return try_lock_until(sched().deadline_after(ns));
}

void Mutex::unlock() {
  Scheduler& s = sched();
  Tcb* me = Scheduler::self();
  if (owner_.load(std::memory_order_relaxed) != me) {
    std::fprintf(stderr, "lwt: Mutex::unlock by non-owner\n");
    std::abort();
  }
  if (const auto* hb = hb_hooks()) hb->lock_released(me, this);
  if (const auto* h = validate_hooks()) h->lock_released(me, this);
  Scheduler::SyncGuard g(s);
  owner_.store(nullptr, std::memory_order_relaxed);
  s.wake_one(waiters_, g);
}

// ---------------------------------------------------------------- CondVar

void CondVar::wait(Mutex& m) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (m.owner_.load(std::memory_order_relaxed) != me) {
    std::fprintf(stderr, "lwt: CondVar::wait without holding the mutex\n");
    std::abort();
  }
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::CondVar::wait", false);
    h->lock_released(me, &m);
  }
  const HbHooks* hb = hb_hooks();
  if (hb != nullptr) {
    hb->lock_released(me, &m);
    hb->wait_begin(me, this, "lwt::CondVar::wait", false);
  }
  // Release and park under one hold of the wait lock: a signal between
  // them cannot be lost, from any worker.
  Scheduler::SyncGuard g(s);
  m.owner_.store(nullptr, std::memory_order_relaxed);
  s.wake_one(m.waiters_, g);
  try {
    s.park_on(waiters_, g);
    s.check_cancel();
  } catch (...) {
    if (hb != nullptr) hb->wait_end(me);
    m.lock();  // pthreads semantics: reacquire before acting on cancel
    throw;
  }
  if (hb != nullptr) {
    hb->wait_end(me);
    hb->sync_acquire(me, this);  // signaler's clock
  }
  m.lock();
}

bool CondVar::wait_until(Mutex& m, std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (m.owner_.load(std::memory_order_relaxed) != me) {
    std::fprintf(stderr,
                 "lwt: CondVar::wait_until without holding the mutex\n");
    std::abort();
  }
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::CondVar::wait_until", true);
    h->lock_released(me, &m);
  }
  const HbHooks* hb = hb_hooks();
  if (hb != nullptr) {
    hb->lock_released(me, &m);
    hb->wait_begin(me, this, "lwt::CondVar::wait_until", true);
  }
  Scheduler::SyncGuard g(s);
  m.owner_.store(nullptr, std::memory_order_relaxed);
  s.wake_one(m.waiters_, g);
  bool signaled;
  try {
    signaled = s.park_on_until(waiters_, deadline_ns, g);
    s.check_cancel();
  } catch (...) {
    if (hb != nullptr) hb->wait_end(me);
    m.lock();  // pthreads semantics: reacquire before acting on cancel
    throw;
  }
  if (hb != nullptr) {
    hb->wait_end(me);
    if (signaled) hb->sync_acquire(me, this);
  }
  m.lock();
  return signaled;
}

void CondVar::signal() {
  Scheduler& s = sched();
  if (const auto* hb = hb_hooks()) hb->sync_release(Scheduler::self(), this);
  s.wake_one(waiters_);
}

void CondVar::broadcast() {
  Scheduler& s = sched();
  if (const auto* hb = hb_hooks()) hb->sync_release(Scheduler::self(), this);
  s.wake_all(waiters_);
}

// -------------------------------------------------------------- Semaphore

void Semaphore::acquire() {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::Semaphore::acquire", false);
  }
  const HbHooks* hb = hb_hooks();
  if (hb != nullptr) {
    hb->wait_begin(me, this, "lwt::Semaphore::acquire", false);
  }
  Scheduler::SyncGuard g(s);
  try {
    while (count_.load(std::memory_order_relaxed) <= 0) {
      s.park_on(waiters_, g);
      g.lock();
      s.check_cancel();
    }
  } catch (...) {
    if (hb != nullptr) hb->wait_end(me);
    throw;
  }
  count_.fetch_sub(1, std::memory_order_relaxed);
  g.unlock();
  if (hb != nullptr) {
    hb->wait_end(me);
    hb->sync_acquire(me, this);  // releaser's clock
  }
}

bool Semaphore::try_acquire() {
  Scheduler& s = sched();
  Scheduler::SyncGuard g(s);
  if (count_.load(std::memory_order_relaxed) <= 0) return false;
  count_.fetch_sub(1, std::memory_order_relaxed);
  g.unlock();
  if (const auto* hb = hb_hooks()) {
    hb->sync_acquire(Scheduler::self(), this);
  }
  return true;
}

bool Semaphore::try_acquire_until(std::uint64_t deadline_ns) {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  // Bounded wait: visible to the validator like every other timed
  // primitive (a try_acquire_until inside a no-block scope is permitted
  // but must still be announced).
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::Semaphore::try_acquire_until", true);
  }
  const HbHooks* hb = hb_hooks();
  if (hb != nullptr) {
    hb->wait_begin(me, this, "lwt::Semaphore::try_acquire_until", true);
  }
  Scheduler::SyncGuard g(s);
  try {
    while (count_.load(std::memory_order_relaxed) <= 0) {
      if (!s.park_on_until(waiters_, deadline_ns, g)) {
        if (hb != nullptr) hb->wait_end(me);
        return false;
      }
      g.lock();
      s.check_cancel();
    }
  } catch (...) {
    if (hb != nullptr) hb->wait_end(me);
    throw;
  }
  count_.fetch_sub(1, std::memory_order_relaxed);
  g.unlock();
  if (hb != nullptr) {
    hb->wait_end(me);
    hb->sync_acquire(me, this);
  }
  return true;
}

void Semaphore::release(std::int64_t n) {
  Scheduler& s = sched();
  if (const auto* hb = hb_hooks()) hb->sync_release(Scheduler::self(), this);
  Scheduler::SyncGuard g(s);
  count_.fetch_add(n, std::memory_order_relaxed);
  // Mesa-style: wake as many waiters as units released; each re-checks.
  for (std::int64_t i = 0; i < n; ++i) {
    if (s.wake_one(waiters_, g) == nullptr) break;
  }
}

// ---------------------------------------------------------------- Barrier

bool Barrier::arrive_and_wait() {
  Scheduler& s = sched();
  s.check_cancel();
  Tcb* me = Scheduler::self();
  if (const auto* h = validate_hooks()) {
    h->blocking_call(me, "lwt::Barrier::arrive_and_wait", false);
  }
  // Every arrival publishes into the barrier's clock; every departure
  // (including the serial arriver's) merges it back, so all pre-barrier
  // work happens-before all post-barrier work.
  const HbHooks* hb = hb_hooks();
  if (hb != nullptr) hb->sync_release(me, this);
  Scheduler::SyncGuard g(s);
  const std::uint64_t gen = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    s.wake_all(waiters_, g);
    g.unlock();
    if (hb != nullptr) hb->sync_acquire(me, this);
    return true;
  }
  if (hb != nullptr) {
    g.unlock();
    hb->wait_begin(me, this, "lwt::Barrier::arrive_and_wait", false);
    g.lock();
  }
  try {
    while (generation_ == gen) {
      s.park_on(waiters_, g);
      g.lock();
      s.check_cancel();
    }
  } catch (...) {
    if (hb != nullptr) hb->wait_end(me);
    throw;
  }
  g.unlock();
  if (hb != nullptr) {
    hb->wait_end(me);
    hb->sync_acquire(me, this);
  }
  return false;
}

}  // namespace lwt
