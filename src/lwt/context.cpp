// context.cpp — backend dispatch for fiber context creation and switching.
#include "lwt/context.hpp"

#include <pthread.h>

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

// The Asm backend's hand-rolled stack switch is invisible to
// AddressSanitizer, so each switch brackets itself with the sanitizer
// fiber API. The Ucontext backend deliberately stays unannotated: ASan
// interposes swapcontext itself, and double annotation corrupts its
// shadow-stack bookkeeping.
#if defined(__SANITIZE_ADDRESS__)
#define LWT_ASAN_FIBERS 1
#endif
#if !defined(LWT_ASAN_FIBERS) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LWT_ASAN_FIBERS 1
#endif
#endif
#if defined(LWT_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

// ThreadSanitizer needs its own fiber API: every context gets a
// __tsan_create_fiber handle and every switch (both backends — TSan has
// no usable swapcontext interposer, unlike ASan) announces the target
// with __tsan_switch_to_fiber *before* the machine-level switch. Default
// flags make each switch a synchronization point, so all memory accesses
// a fiber performed before suspending happen-before everything the next
// fiber does — the scheduler-handoff, timer-fire and message-dispatch
// edges within one OS thread come from these switch annotations.
#if defined(__SANITIZE_THREAD__)
#define LWT_TSAN_FIBERS 1
#endif
#if !defined(LWT_TSAN_FIBERS) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LWT_TSAN_FIBERS 1
#endif
#endif
#if defined(LWT_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

namespace lwt {

#if !defined(LWT_NO_ASM_CONTEXT)
extern "C" {
void lwt_asm_ctx_swap(void** save_sp, void* restore_sp) noexcept;
void lwt_asm_fiber_start();
// Called from the assembly trampoline; must have C linkage for the PLT call.
[[noreturn]] void lwt_asm_fiber_boot(Tcb* tcb) { detail::fiber_boot(tcb); }
}
#endif

ContextBackend default_backend() noexcept {
#if defined(LWT_NO_ASM_CONTEXT)
  return ContextBackend::Ucontext;
#else
  return ContextBackend::Asm;
#endif
}

Context::~Context() {
#if defined(LWT_TSAN_FIBERS)
  // Only fibers created by ctx_make are destroyed; the OS thread's own
  // fiber (bound by ctx_bind_os_stack) belongs to the TSan runtime. A
  // Tcb is deleted from the scheduler context (reap/zombie teardown), so
  // the fiber being destroyed is never the one currently executing.
  if (tsan_owned && tsan_fiber != nullptr) __tsan_destroy_fiber(tsan_fiber);
#endif
  delete uc;
}

namespace {

#if defined(LWT_TSAN_FIBERS)
// Announces the upcoming switch to TSan. Must run on the suspending
// fiber, immediately before the machine-level switch.
inline void tsan_announce_switch(Context& to) noexcept {
  __tsan_switch_to_fiber(to.tsan_fiber, 0);
}
#endif

#if !defined(LWT_NO_ASM_CONTEXT)
// Builds the initial frame lwt_asm_ctx_swap expects on a fresh stack:
// from low to high address: [mxcsr|fcw][r15 r14 r13 r12 rbx rbp][ret=start]
// with r12 carrying the Tcb pointer into the trampoline.
void asm_make(Context& ctx, void* stack_base, std::size_t stack_size,
              Tcb* tcb) {
  auto top = reinterpret_cast<std::uintptr_t>(stack_base) + stack_size;
  top &= ~std::uintptr_t{15};  // 16-byte align the logical stack top
  auto* frame = reinterpret_cast<std::uint64_t*>(top);
  // frame[-1] : return address -> trampoline
  // frame[-2] : rbp = 0 (terminates frame-pointer walks)
  // frame[-3] : rbx
  // frame[-4] : r12 = tcb
  // frame[-5] : r13
  // frame[-6] : r14
  // frame[-7] : r15
  // frame[-8] : fpu word (mxcsr @ +0, x87 cw @ +4) — seeded from caller
  frame[-1] = reinterpret_cast<std::uint64_t>(&lwt_asm_fiber_start);
  frame[-2] = 0;
  frame[-3] = 0;
  frame[-4] = reinterpret_cast<std::uint64_t>(tcb);
  frame[-5] = 0;
  frame[-6] = 0;
  frame[-7] = 0;
  std::uint32_t mxcsr;
  std::uint16_t fcw;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  auto* fpu = reinterpret_cast<std::uint8_t*>(&frame[-8]);
  std::memcpy(fpu, &mxcsr, sizeof mxcsr);
  std::memcpy(fpu + 4, &fcw, sizeof fcw);
  std::memset(fpu + 6, 0, 2);
  ctx.sp = &frame[-8];
}
#endif

// makecontext only passes `int` arguments portably, so the Tcb pointer is
// split into two 32-bit halves and reassembled in the entry shim.
void uc_entry(unsigned hi, unsigned lo) {
  auto bits = (static_cast<std::uintptr_t>(hi) << 32) |
              static_cast<std::uintptr_t>(lo);
  detail::fiber_boot(reinterpret_cast<Tcb*>(bits));
}

void uc_make(Context& ctx, void* stack_base, std::size_t stack_size,
             Tcb* tcb) {
  if (ctx.uc == nullptr) ctx.uc = new ucontext_t;
  if (getcontext(ctx.uc) != 0) std::abort();
  ctx.uc->uc_stack.ss_sp = stack_base;
  ctx.uc->uc_stack.ss_size = stack_size;
  ctx.uc->uc_link = nullptr;  // fibers never fall off the end (boot traps)
  auto bits = reinterpret_cast<std::uintptr_t>(tcb);
  makecontext(ctx.uc, reinterpret_cast<void (*)()>(&uc_entry), 2,
              static_cast<unsigned>(bits >> 32),
              static_cast<unsigned>(bits & 0xffffffffu));
}

}  // namespace

void ctx_make(Context& ctx, ContextBackend backend, void* stack_base,
              std::size_t stack_size, Tcb* tcb) {
  ctx.stack_base = stack_base;
  ctx.stack_size = stack_size;
  ctx.fake_stack = nullptr;
#if defined(LWT_TSAN_FIBERS)
  if (ctx.tsan_fiber == nullptr) {
    ctx.tsan_fiber = __tsan_create_fiber(0);
    ctx.tsan_owned = true;
  }
#endif
  switch (backend) {
    case ContextBackend::Asm:
#if defined(LWT_NO_ASM_CONTEXT)
      assert(false && "asm backend unavailable on this platform");
      [[fallthrough]];
#else
      asm_make(ctx, stack_base, stack_size, tcb);
      return;
#endif
    case ContextBackend::Ucontext:
      uc_make(ctx, stack_base, stack_size, tcb);
      return;
  }
}

void ctx_swap(Context& from, Context& to, ContextBackend backend) noexcept {
#if defined(LWT_TSAN_FIBERS)
  tsan_announce_switch(to);
#endif
  switch (backend) {
    case ContextBackend::Asm:
#if defined(LWT_NO_ASM_CONTEXT)
      assert(false && "asm backend unavailable on this platform");
      [[fallthrough]];
#else
#if defined(LWT_ASAN_FIBERS)
      __sanitizer_start_switch_fiber(&from.fake_stack, to.stack_base,
                                     to.stack_size);
#endif
      lwt_asm_ctx_swap(&from.sp, to.sp);
      // Back in `from`: from.fake_stack holds whatever the start_switch
      // that most recently suspended this context saved there.
#if defined(LWT_ASAN_FIBERS)
      __sanitizer_finish_switch_fiber(from.fake_stack, nullptr, nullptr);
#endif
      return;
#endif
    case ContextBackend::Ucontext: {
      if (from.uc == nullptr) from.uc = new ucontext_t;
      if (swapcontext(from.uc, to.uc) != 0) std::abort();
      return;
    }
  }
}

void ctx_swap_final(Context& from, Context& to,
                    ContextBackend backend) noexcept {
#if defined(LWT_TSAN_FIBERS)
  // The dying fiber's TSan state is destroyed later, from the scheduler
  // context, when its Tcb is reaped (~Context) — TSan forbids destroying
  // the fiber that is currently running.
  tsan_announce_switch(to);
#endif
  switch (backend) {
    case ContextBackend::Asm:
#if defined(LWT_NO_ASM_CONTEXT)
      assert(false && "asm backend unavailable on this platform");
      [[fallthrough]];
#else
#if defined(LWT_ASAN_FIBERS)
      // Null save slot: this context never resumes, release its fake stack.
      __sanitizer_start_switch_fiber(nullptr, to.stack_base, to.stack_size);
#endif
      lwt_asm_ctx_swap(&from.sp, to.sp);
      break;
#endif
    case ContextBackend::Ucontext:
      if (from.uc == nullptr) from.uc = new ucontext_t;
      (void)swapcontext(from.uc, to.uc);
      break;
  }
  std::fprintf(stderr, "lwt: finished fiber rescheduled\n");
  std::abort();
}

void ctx_bind_os_stack(Context& ctx) noexcept {
#if defined(__linux__)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* base = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &base, &size) == 0) {
      ctx.stack_base = base;
      ctx.stack_size = size;
    }
    pthread_attr_destroy(&attr);
  }
#else
  (void)ctx;
#endif
#if defined(LWT_TSAN_FIBERS)
  // The scheduler context runs on the OS thread's own stack; its TSan
  // fiber is the thread's implicit one and must never be destroyed.
  if (ctx.tsan_fiber == nullptr) {
    ctx.tsan_fiber = __tsan_get_current_fiber();
    ctx.tsan_owned = false;
  }
#endif
}

void ctx_note_fiber_entry(ContextBackend backend) noexcept {
#if defined(LWT_ASAN_FIBERS) && !defined(LWT_NO_ASM_CONTEXT)
  // A fresh fiber has no fake stack to restore; this completes the
  // start_switch issued by whoever swapped into us for the first time.
  if (backend == ContextBackend::Asm) {
    __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
  }
#else
  (void)backend;
#endif
}

}  // namespace lwt
