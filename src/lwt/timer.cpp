// timer.cpp — deterministic min-heap timer wheel (see lwt/timer.hpp).
#include "lwt/timer.hpp"

#include <utility>

namespace lwt {

void TimerWheel::heap_push(Entry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

TimerWheel::Entry TimerWheel::heap_pop() {
  Entry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t l = 2 * i + 1;
    std::size_t r = l + 1;
    std::size_t m = i;
    if (l < n && later(heap_[m], heap_[l])) m = l;
    if (r < n && later(heap_[m], heap_[r])) m = r;
    if (m == i) break;
    std::swap(heap_[i], heap_[m]);
    i = m;
  }
  return top;
}

TimerWheel::TimerId TimerWheel::arm(std::uint64_t deadline_ns, Tcb* t) {
  const TimerId id = next_id_++;
  live_.emplace(id, t);
  heap_push(Entry{deadline_ns, id});
  return id;
}

bool TimerWheel::disarm(TimerId id) {
  const bool was_live = live_.erase(id) != 0;
  // The heap entry is left behind as a tombstone, skipped at pop time.
  // When the last live timer goes away, drop the tombstones so a burst
  // of short timed waits cannot leave the heap holding stale entries.
  if (live_.empty()) heap_.clear();
  return was_live;
}

std::size_t TimerWheel::expire(std::uint64_t now_ns,
                               void (*fire)(void* ctx, Tcb* t), void* ctx) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.front().deadline <= now_ns) {
    const Entry e = heap_pop();
    auto it = live_.find(e.id);
    if (it == live_.end()) continue;  // disarmed tombstone
    Tcb* t = it->second;
    live_.erase(it);
    fire(ctx, t);
    ++fired;
  }
  return fired;
}

}  // namespace lwt
