// trace.cpp — scheduler event ring buffer.
#include "lwt/trace.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace lwt {

const char* to_string(TraceEvent e) noexcept {
  switch (e) {
    case TraceEvent::Spawn: return "spawn";
    case TraceEvent::SwitchIn: return "switch-in";
    case TraceEvent::Yield: return "yield";
    case TraceEvent::Park: return "park";
    case TraceEvent::Ready: return "ready";
    case TraceEvent::PollTest: return "poll-test";
    case TraceEvent::Finish: return "finish";
  }
  return "?";
}

namespace {
std::uint64_t trace_now() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Trace::Trace(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void Trace::record(TraceEvent e, std::uint32_t tid) noexcept {
  const std::uint64_t ns = trace_now();
  mu_.lock();
  ring_[head_] = Entry{ns, e, tid};
  head_ = (head_ + 1) % ring_.size();
  ++recorded_;
  mu_.unlock();
}

std::uint64_t Trace::recorded() const noexcept {
  mu_.lock();
  const std::uint64_t n = recorded_;
  mu_.unlock();
  return n;
}

std::vector<Trace::Entry> Trace::snapshot() const {
  std::vector<Entry> out;
  std::lock_guard<SpinLock> lk(mu_);
  const std::size_t n =
      recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                               : ring_.size();
  out.reserve(n);
  // Oldest retained entry sits at head_ when the ring has wrapped.
  const std::size_t start =
      recorded_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string Trace::dump() const {
  const auto entries = snapshot();
  std::string out;
  if (entries.empty()) return out;
  const std::uint64_t t0 = entries.front().ns;
  char line[96];
  for (const Entry& e : entries) {
    std::snprintf(line, sizeof line, "+%-10.1f %-10s #%u\n",
                  static_cast<double>(e.ns - t0) / 1000.0,
                  to_string(e.event), e.tid);
    out += line;
  }
  return out;
}

void Trace::clear() noexcept {
  mu_.lock();
  head_ = 0;
  recorded_ = 0;
  mu_.unlock();
}

}  // namespace lwt
