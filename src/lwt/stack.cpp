// stack.cpp — mmap-backed guard-paged stack allocation.
#include "lwt/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace lwt {

std::size_t page_size() noexcept {
  static const std::size_t pz =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return pz;
}

namespace {

std::size_t round_up_pages(std::size_t n) noexcept {
  const std::size_t pz = page_size();
  if (n < pz) n = pz;
  return (n + pz - 1) & ~(pz - 1);
}

Stack map_stack(std::size_t usable) {
  const std::size_t pz = page_size();
  const std::size_t total = usable + pz;  // + guard page
  void* mem = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (mem == MAP_FAILED) {
    std::perror("lwt: mmap stack");
    std::abort();
  }
  if (::mprotect(mem, pz, PROT_NONE) != 0) {
    std::perror("lwt: mprotect guard");
    std::abort();
  }
  return Stack{static_cast<char*>(mem) + pz, usable};
}

void unmap_stack(Stack s) noexcept {
  if (!s) return;
  ::munmap(static_cast<char*>(s.base) - page_size(), s.size + page_size());
}

}  // namespace

StackPool::~StackPool() { trim(); }

Stack StackPool::acquire(std::size_t min_size) {
  const std::size_t usable = round_up_pages(min_size);
  mu_.lock();
  auto it = pool_.find(usable);
  if (it != pool_.end() && !it->second.empty()) {
    Stack s = it->second.back();
    it->second.pop_back();
    mu_.unlock();
    return s;
  }
  mu_.unlock();
  return map_stack(usable);  // the syscall runs outside the lock
}

void StackPool::release(Stack s) noexcept {
  if (!s) return;
  mu_.lock();
  try {
    pool_[s.size].push_back(s);
    mu_.unlock();
  } catch (...) {
    mu_.unlock();
    unmap_stack(s);  // allocation failure: just give the memory back
  }
}

std::size_t StackPool::cached() const noexcept {
  mu_.lock();
  std::size_t n = 0;
  for (const auto& [sz, v] : pool_) n += v.size();
  mu_.unlock();
  return n;
}

void StackPool::trim() noexcept {
  mu_.lock();
  auto stacks = std::move(pool_);
  pool_.clear();
  mu_.unlock();
  for (auto& [sz, v] : stacks) {
    for (Stack s : v) unmap_stack(s);
  }
}

}  // namespace lwt
