// stack.cpp — mmap-backed guard-paged stack allocation.
#include "lwt/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace lwt {

std::size_t page_size() noexcept {
  static const std::size_t pz =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return pz;
}

namespace {

std::size_t round_up_pages(std::size_t n) noexcept {
  const std::size_t pz = page_size();
  if (n < pz) n = pz;
  return (n + pz - 1) & ~(pz - 1);
}

Stack map_stack(std::size_t usable) {
  const std::size_t pz = page_size();
  const std::size_t total = usable + pz;  // + guard page
  void* mem = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (mem == MAP_FAILED) {
    std::perror("lwt: mmap stack");
    std::abort();
  }
  if (::mprotect(mem, pz, PROT_NONE) != 0) {
    std::perror("lwt: mprotect guard");
    std::abort();
  }
  return Stack{static_cast<char*>(mem) + pz, usable};
}

void unmap_stack(Stack s) noexcept {
  if (!s) return;
  ::munmap(static_cast<char*>(s.base) - page_size(), s.size + page_size());
}

}  // namespace

StackPool::~StackPool() { trim(); }

Stack StackPool::acquire(std::size_t min_size) {
  const std::size_t usable = round_up_pages(min_size);
  auto it = pool_.find(usable);
  if (it != pool_.end() && !it->second.empty()) {
    Stack s = it->second.back();
    it->second.pop_back();
    return s;
  }
  return map_stack(usable);
}

void StackPool::release(Stack s) noexcept {
  if (!s) return;
  try {
    pool_[s.size].push_back(s);
  } catch (...) {
    unmap_stack(s);  // allocation failure: just give the memory back
  }
}

std::size_t StackPool::cached() const noexcept {
  std::size_t n = 0;
  for (const auto& [sz, v] : pool_) n += v.size();
  return n;
}

void StackPool::trim() noexcept {
  for (auto& [sz, v] : pool_) {
    for (Stack s : v) unmap_stack(s);
    v.clear();
  }
  pool_.clear();
}

}  // namespace lwt
