// scheduler.cpp — M:N user-level thread scheduling with pollable waits.
//
// Concurrency overview (single-worker runs behave exactly as the old
// one-OS-thread scheduler; see DESIGN.md §10 for the full protocol):
//
//  * Each worker owns its run queues under its own spinlock; the local
//    push/pop path touches nothing shared.
//  * One global wait lock (wait_mu_) guards every blocked-fiber
//    structure. A parking fiber KEEPS it across the context switch —
//    the worker releases it after the switch (Worker::pending_unlock) —
//    so a concurrent waker can never enqueue a fiber that is still
//    running on its old worker's stack.
//  * A fiber that re-queues ITSELF (yield, PS park) defers the enqueue
//    the same way (Worker::pending_enqueue): the worker pushes it after
//    the switch, so a stealer cannot grab a fiber mid-switch-out.
//  * PS-parked fibers stay Ready in their owner's queue and are never
//    stolen; the race between a successful poll test and a concurrent
//    timer fire is settled by atomically claiming Tcb::poll_active.
//  * Cross-thread ready() (timer threads, transport threads) lands in a
//    mutex-guarded injection queue every worker drains at every
//    scheduling point; inject_len_/idle_workers_ are seq_cst so an
//    injector and a parking worker cannot miss each other.
#include "lwt/scheduler.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <sstream>
#include <thread>

#include "lwt/hb.hpp"

namespace lwt {

namespace {
thread_local Scheduler* tl_sched = nullptr;

const char* state_name(ThreadState s) {
  switch (s) {
    case ThreadState::Ready: return "ready";
    case ThreadState::Running: return "running";
    case ThreadState::Blocked: return "blocked";
    case ThreadState::Finished: return "finished";
  }
  return "?";
}

void accumulate(SchedulerStats& into, const SchedulerStats& from) {
  into.spawns += from.spawns;
  into.full_switches += from.full_switches;
  into.yields += from.yields;
  into.partial_poll_tests += from.partial_poll_tests;
  into.wq_poll_tests += from.wq_poll_tests;
  into.sched_points += from.sched_points;
  into.idle_spins += from.idle_spins;
  into.waiting_samples += from.waiting_samples;
  into.waiting_sum += from.waiting_sum;
  into.timers_armed += from.timers_armed;
  into.timer_fires += from.timer_fires;
  into.timer_cancels += from.timer_cancels;
  into.sleeps += from.sleeps;
  into.steals += from.steals;
  into.injections += from.injections;
  into.parks += from.parks;
  into.local_hits += from.local_hits;
}
}  // namespace

thread_local Scheduler::Worker* Scheduler::tl_worker_ = nullptr;

// noinline: the thread-local slot address must be re-derived on every
// call — fiber code calls this before and after context switches that
// may have moved the fiber to a different OS thread.
__attribute__((noinline)) Scheduler::Worker* Scheduler::this_worker() noexcept {
  return tl_worker_;
}

// ---------------------------------------------------------------- TcbQueue

void TcbQueue::push_back(Tcb* t) noexcept {
  t->qnext = nullptr;
  t->qprev = tail_;
  if (tail_ != nullptr) {
    tail_->qnext = t;
  } else {
    head_ = t;
  }
  tail_ = t;
  ++size_;
}

Tcb* TcbQueue::pop_front() noexcept {
  Tcb* t = head_;
  if (t == nullptr) return nullptr;
  head_ = t->qnext;
  if (head_ != nullptr) {
    head_->qprev = nullptr;
  } else {
    tail_ = nullptr;
  }
  t->qnext = t->qprev = nullptr;
  --size_;
  return t;
}

bool TcbQueue::remove(Tcb* t) noexcept {
  // Membership check: a node is in *some* queue iff it has neighbours or
  // is the head; callers track which queue via Tcb::waiting_on.
  if (head_ == nullptr) return false;
  if (t != head_ && t->qprev == nullptr && t->qnext == nullptr) return false;
  if (t->qprev != nullptr) t->qprev->qnext = t->qnext;
  if (t->qnext != nullptr) t->qnext->qprev = t->qprev;
  if (head_ == t) head_ = t->qnext;
  if (tail_ == t) tail_ = t->qprev;
  t->qnext = t->qprev = nullptr;
  --size_;
  return true;
}

void Tcb::set_name(const char* n) noexcept {
  if (n == nullptr) {
    name[0] = '\0';
    return;
  }
  std::snprintf(name, sizeof name, "%s", n);
}

// --------------------------------------------------------------- Scheduler

Scheduler::Scheduler(ContextBackend backend) : backend_(backend) {
#if defined(LWT_NO_ASM_CONTEXT)
  backend_ = ContextBackend::Ucontext;
#endif
}

Scheduler::~Scheduler() {
  for (Tcb* z : zombies_) {
    stacks_.release(z->stack);
    delete z;
  }
  zombies_.clear();
}

Scheduler* Scheduler::current() { return tl_sched; }

Tcb* Scheduler::self() {
  Worker* w = this_worker();
  return w != nullptr ? w->current : nullptr;
}

unsigned Scheduler::default_workers() noexcept {
  const char* e = std::getenv("CHANT_WORKERS");
  if (e == nullptr || *e == '\0') return 1;  // opt-in: unset keeps 1:1
  char* end = nullptr;
  const long v = std::strtol(e, &end, 10);
  if (end == e || v < 0) return 1;
  unsigned n = v == 0 ? std::thread::hardware_concurrency()
                      : static_cast<unsigned>(v);
  if (n == 0) n = 1;
  if (n > kMaxWorkers) n = kMaxWorkers;
  return n;
}

SchedulerStats& Scheduler::local_stats() {
  // Off-worker callers (foreign-thread spawn/timer paths) must hold the
  // wait lock; base_stats_ is guarded by it.
  Worker* w = this_worker();
  if (w != nullptr && w->sched == this) return w->stats;
  return base_stats_;
}

Tcb* Scheduler::spawn(EntryFn entry, void* arg, const ThreadAttr& attr) {
  auto* t = new Tcb;
  t->entry = entry;
  t->arg = arg;
  t->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const int prio = attr.priority < 0                ? 0
                   : attr.priority >= kNumPriorities ? kNumPriorities - 1
                                                     : attr.priority;
  t->priority.store(prio, std::memory_order_relaxed);
  t->detached = attr.detached;
  t->sched = this;
  t->set_name(attr.name);
  t->stack = stacks_.acquire(attr.stack_size);
  ctx_make(t->ctx, backend_, t->stack.base, t->stack.size, t);
  active_.fetch_add(1, std::memory_order_relaxed);
  Worker* w = this_worker();
  if (w != nullptr && w->sched == this) {
    ++w->stats.spawns;
  } else {
    SyncGuard g(*this);
    ++base_stats_.spawns;
  }
  if (trace_ != nullptr) trace_->record(TraceEvent::Spawn, t->id);
  if (const HbHooks* hb = hb_hooks()) {
    hb->thread_spawn(w != nullptr && w->sched == this ? w->current : nullptr,
                     t);
  }
  enqueue_or_inject(t);
  return t;
}

void* Scheduler::run_main(EntryFn entry, void* arg, const ThreadAttr& attr) {
  if (running_) {
    std::fprintf(stderr, "lwt: run_main is not reentrant\n");
    std::abort();
  }
  // Resolve the worker count. The determinism contract: a schedule
  // controller or WQ group-poll hook forces one worker, so controlled
  // interleavings (and their traces) replay bit-exactly.
  unsigned n = requested_workers_ != 0 ? requested_workers_ : default_workers();
  if (ctrl_ != nullptr || wq_group_poll_ != nullptr) n = 1;
  if (n > kMaxWorkers) n = kMaxWorkers;
  // Fold any previous run's counters, then build this run's pool.
  for (auto& w : workers_) accumulate(base_stats_, w->stats);
  workers_.clear();
  nworkers_ = n;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->sched = this;
    w->index = i;
    w->steal_rng = 0x9e3779b97f4a7c15ull * (i + 1);
    workers_.push_back(std::move(w));
  }
  spinner_.store(-1, std::memory_order_relaxed);
  idle_workers_.store(0, std::memory_order_relaxed);

  Scheduler* prev_sched = tl_sched;
  Worker* prev_worker = tl_worker_;
  tl_sched = this;
  tl_worker_ = workers_[0].get();
  running_ = true;
  ctx_bind_os_stack(workers_[0]->sched_ctx);
  Tcb* main_tcb = spawn(entry, arg, attr);
  if (main_tcb->name[0] == '\0') main_tcb->set_name("main");
  main_tcb->detached = false;
  for (unsigned i = 1; i < n; ++i) {
    Worker* w = workers_[i].get();
    w->thr = std::thread([this, w] {
      tl_sched = this;
      tl_worker_ = w;
      ctx_bind_os_stack(w->sched_ctx);
      if (worker_start_hook_ != nullptr) worker_start_hook_(worker_hook_ctx_);
      worker_loop(*w);
      if (worker_stop_hook_ != nullptr) worker_stop_hook_(worker_hook_ctx_);
      tl_sched = nullptr;
      tl_worker_ = nullptr;
    });
  }
  worker_loop(*workers_[0]);
  unpark_all();
  for (unsigned i = 1; i < n; ++i) workers_[i]->thr.join();
  running_ = false;
  tl_sched = prev_sched;
  tl_worker_ = prev_worker;
  void* ret = main_tcb->retval;
  // Reap the main fiber (it is a zombie by now unless someone joined it).
  // All workers have exited: no locking needed.
  for (auto it = zombies_.begin(); it != zombies_.end(); ++it) {
    if (*it == main_tcb) {
      zombies_.erase(it);
      stacks_.release(main_tcb->stack);
      delete main_tcb;
      break;
    }
  }
  return ret;
}

// ----------------------------------------------------------- time & timers

std::uint64_t Scheduler::now() const {
  if (clock_fn_ != nullptr) return clock_fn_(clock_ctx_);
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

std::uint64_t Scheduler::deadline_after(std::uint64_t delta_ns) const {
  const std::uint64_t t = now();
  return delta_ns >= kNoDeadline - t ? kNoDeadline : t + delta_ns;
}

std::uint64_t Scheduler::next_timer_deadline() const noexcept {
  return next_deadline_cache_.load(std::memory_order_acquire);
}

TimerWheel::TimerId Scheduler::arm_timer(std::uint64_t deadline_ns, Tcb* t) {
  ++local_stats().timers_armed;
  const TimerWheel::TimerId id = timers_.arm(deadline_ns, t);
  next_deadline_cache_.store(timers_.next_deadline(),
                             std::memory_order_relaxed);
  timers_live_.store(timers_.armed(), std::memory_order_relaxed);
  return id;
}

void Scheduler::disarm_timer(TimerWheel::TimerId id) {
  if (timers_.disarm(id)) ++local_stats().timer_cancels;
  next_deadline_cache_.store(
      timers_.armed() != 0 ? timers_.next_deadline() : kNoDeadline,
      std::memory_order_relaxed);
  timers_live_.store(timers_.armed(), std::memory_order_relaxed);
}

void Scheduler::timeout_wake(Tcb* t) {
  // PS claim first, independent of state: a PS fiber is Ready in a run
  // queue — or Running for the instant between publishing poll_active
  // and its deferred self-enqueue. Whoever exchanges poll_active to
  // false owns the wakeup; the loser's work is already done (the fiber
  // will run, and the wait code re-tests the request under timed_out).
  if (t->poll_active.load(std::memory_order_acquire)) {
    t->timed_out.store(true, std::memory_order_release);
    if (t->poll_active.exchange(false, std::memory_order_acq_rel)) {
      ps_parked_.fetch_sub(1, std::memory_order_relaxed);
      ++local_stats().timer_fires;
    }
    return;
  }
  if (t->state.load(std::memory_order_acquire) != ThreadState::Blocked) {
    return;  // stale fire: the real wakeup beat the timer
  }
  t->timed_out.store(true, std::memory_order_release);
  ++local_stats().timer_fires;
  if (t->waiting_on != nullptr) {
    // Parked on a wait list (sync primitive / sleep via park).
    t->waiting_on->remove(t);
    t->waiting_on = nullptr;
    blocked_.fetch_sub(1, std::memory_order_relaxed);
    enqueue_or_inject(t);
    return;
  }
  for (std::size_t i = 0; i < wq_.size(); ++i) {
    if (wq_[i].tcb == t) {
      wq_[i] = wq_.back();
      wq_.pop_back();
      wq_len_.store(static_cast<std::uint32_t>(wq_.size()),
                    std::memory_order_relaxed);
      blocked_.fetch_sub(1, std::memory_order_relaxed);
      enqueue_or_inject(t);
      return;
    }
  }
  for (std::size_t i = 0; i < generic_wq_.size(); ++i) {
    if (generic_wq_[i].tcb == t) {
      generic_wq_[i] = generic_wq_.back();
      generic_wq_.pop_back();
      generic_len_.store(static_cast<std::uint32_t>(generic_wq_.size()),
                         std::memory_order_relaxed);
      blocked_.fetch_sub(1, std::memory_order_relaxed);
      enqueue_or_inject(t);
      return;
    }
  }
  // Blocked in join or sleep_until: just make it ready; the wait code
  // inspects timed_out on resume.
  blocked_.fetch_sub(1, std::memory_order_relaxed);
  enqueue_or_inject(t);
}

void Scheduler::maybe_expire_timers() {
  // Lock-free gate: next_deadline_cache_ is refreshed under the wait
  // lock at every arm/disarm/expire, so a worker only pays for the lock
  // when a deadline has actually passed.
  const std::uint64_t nd = next_deadline_cache_.load(std::memory_order_relaxed);
  if (nd == kNoDeadline || now() < nd) return;
  SyncGuard g(*this);
  const std::uint64_t t = now();
  if (timers_.armed() != 0 && timers_.next_deadline() <= t) {
    timers_.expire(
        t,
        [](void* ctx, Tcb* tcb) {
          static_cast<Scheduler*>(ctx)->timeout_wake(tcb);
        },
        this);
  }
  next_deadline_cache_.store(
      timers_.armed() != 0 ? timers_.next_deadline() : kNoDeadline,
      std::memory_order_relaxed);
  timers_live_.store(timers_.armed(), std::memory_order_relaxed);
}

void Scheduler::sleep_until(std::uint64_t deadline_ns) {
  Worker* w = this_worker();
  Tcb* me = w->current;
  check_cancel();
  if (deadline_ns == kNoDeadline || now() >= deadline_ns) return;
  ++w->stats.sleeps;
  if (trace_ != nullptr) trace_->record(TraceEvent::Park, me->id);
  SyncGuard g(*this);
  const TimerWheel::TimerId tid = arm_timer(deadline_ns, me);
  me->state.store(ThreadState::Blocked, std::memory_order_relaxed);
  me->waiting_on = nullptr;
  blocked_.fetch_add(1, std::memory_order_relaxed);
  park_switch(g);
  {
    SyncGuard g2(*this);
    disarm_timer(tid);  // no-op on the normal (timer-fired) path
  }
  me->timed_out.store(false, std::memory_order_relaxed);
  check_cancel();  // cancel() is the only other wake source
}

void Scheduler::sleep_for(std::uint64_t ns) { sleep_until(deadline_after(ns)); }

// ------------------------------------------------------ queues & switching

void Scheduler::enqueue_ready(Tcb* t) {
  if (trace_ != nullptr) trace_->record(TraceEvent::Ready, t->id);
  Worker& w = *this_worker();
  t->waiting_on = nullptr;
  t->state.store(ThreadState::Ready, std::memory_order_relaxed);
  w.q_mu.lock();
  t->home_worker.store(w.index, std::memory_order_relaxed);
  w.run_q[t->priority.load(std::memory_order_relaxed)].push_back(t);
  const std::uint32_t qlen =
      w.q_len.fetch_add(1, std::memory_order_relaxed) + 1;
  w.q_mu.unlock();
  // More runnable work than this worker can execute: offer it to a
  // parked peer (stealing does the actual transfer).
  if (qlen >= 2 && nworkers_ > 1) unpark_one();
}

void Scheduler::enqueue_or_inject(Tcb* t) {
  Worker* w = this_worker();
  if (w != nullptr && w->sched == this) {
    enqueue_ready(t);
  } else {
    inject(t);
  }
}

void Scheduler::inject(Tcb* t) {
  if (trace_ != nullptr) trace_->record(TraceEvent::Ready, t->id);
  t->waiting_on = nullptr;
  t->state.store(ThreadState::Ready, std::memory_order_release);
  inject_mu_.lock();
  inject_q_.push_back(t);
  inject_mu_.unlock();
  inject_len_.fetch_add(1, std::memory_order_seq_cst);
  injections_.fetch_add(1, std::memory_order_relaxed);
  unpark_one();
}

void Scheduler::drain_inject(Worker& w) {
  // Move everything to a local list first so the two locks never nest.
  TcbQueue batch;
  inject_mu_.lock();
  Tcb* t;
  std::uint32_t n = 0;
  while ((t = inject_q_.pop_front()) != nullptr) {
    batch.push_back(t);
    ++n;
  }
  inject_mu_.unlock();
  if (n == 0) return;
  inject_len_.fetch_sub(n, std::memory_order_seq_cst);
  w.q_mu.lock();
  while ((t = batch.pop_front()) != nullptr) {
    t->home_worker.store(w.index, std::memory_order_relaxed);
    w.run_q[t->priority.load(std::memory_order_relaxed)].push_back(t);
    w.q_len.fetch_add(1, std::memory_order_relaxed);
  }
  w.q_mu.unlock();
  if (n > 1 && nworkers_ > 1) unpark_one();
}

void Scheduler::switch_to(Worker& w, Tcb* t) {
  t->state.store(ThreadState::Running, std::memory_order_relaxed);
  w.current = t;
  ++w.stats.full_switches;
  if (trace_ != nullptr) trace_->record(TraceEvent::SwitchIn, t->id);
  ctx_swap(w.sched_ctx, t->ctx, backend_);
  // The fiber is off this worker's CPU now. Perform its deferred
  // actions in this order: release a wait lock it held across the park
  // (unblocks wakers), then make a self-requeue visible (stealable),
  // then reap a finished detached fiber.
  w.current = nullptr;
  if (w.pending_unlock != nullptr) {
    SpinLock* l = w.pending_unlock;
    w.pending_unlock = nullptr;
    l->unlock();
  }
  if (w.pending_enqueue != nullptr) {
    Tcb* e = w.pending_enqueue;
    w.pending_enqueue = nullptr;
    enqueue_ready(e);
  }
  if (w.pending_reap != nullptr) {
    reap(w.pending_reap);
    w.pending_reap = nullptr;
  }
}

void Scheduler::wq_scan(Worker& w) {
  // Generic (policy-independent) waits are tested at every point, even
  // when a group-poll hook replaces the per-entry WQ scan below.
  if (generic_len_.load(std::memory_order_relaxed) != 0) {
    SyncGuard g(*this);
    for (std::size_t i = 0; i < generic_wq_.size();) {
      if (generic_wq_[i].req.test(generic_wq_[i].req.ctx)) {
        Tcb* t = generic_wq_[i].tcb;
        generic_wq_[i] = generic_wq_.back();
        generic_wq_.pop_back();
        generic_len_.store(static_cast<std::uint32_t>(generic_wq_.size()),
                           std::memory_order_relaxed);
        blocked_.fetch_sub(1, std::memory_order_relaxed);
        enqueue_ready(t);
      } else {
        ++i;
      }
    }
  }
  if (wq_len_.load(std::memory_order_relaxed) == 0) return;
  if (wq_group_poll_ != nullptr) {
    // msgtestany-style ablation: one group test per scheduling point.
    // Called without the wait lock (the hook forces workers=1 and
    // completes entries through wq_complete, which locks itself).
    (void)wq_group_poll_(wq_group_ctx_, *this);
    return;
  }
  // NX-style: test each outstanding request in turn (paper §4.2, WQ).
  SyncGuard g(*this);
  for (std::size_t i = 0; i < wq_.size();) {
    ++w.stats.wq_poll_tests;
    if (wq_[i].req.test(wq_[i].req.ctx)) {
      Tcb* t = wq_[i].tcb;
      wq_[i] = wq_.back();
      wq_.pop_back();
      wq_len_.store(static_cast<std::uint32_t>(wq_.size()),
                    std::memory_order_relaxed);
      blocked_.fetch_sub(1, std::memory_order_relaxed);
      enqueue_ready(t);
    } else {
      ++i;
    }
  }
}

bool Scheduler::wq_complete(void* req_ctx) {
  SyncGuard g(*this);
  for (std::size_t i = 0; i < wq_.size(); ++i) {
    if (wq_[i].req.ctx == req_ctx) {
      Tcb* t = wq_[i].tcb;
      wq_[i] = wq_.back();
      wq_.pop_back();
      wq_len_.store(static_cast<std::uint32_t>(wq_.size()),
                    std::memory_order_relaxed);
      blocked_.fetch_sub(1, std::memory_order_relaxed);
      enqueue_or_inject(t);
      return true;
    }
  }
  return false;
}

bool Scheduler::poll_wake(void* req_ctx) {
  // Event-driven completion for a parked poller, policy-agnostic: the
  // waker does not know (or care) whether the fiber parked on the WQ or
  // generic list, so both are searched. Callable from any OS thread —
  // foreign callers (a sender's thread running a completion callback)
  // route through enqueue_or_inject's inject path. A miss is not an
  // error: either the fiber has not parked yet (its under-lock re-test
  // at park time observes readiness instead — the lost-wakeup closure)
  // or another waker got here first.
  if (wq_len_.load(std::memory_order_acquire) == 0 &&
      generic_len_.load(std::memory_order_acquire) == 0) {
    return false;  // nothing parked: skip the lock
  }
  SyncGuard g(*this);
  for (std::size_t i = 0; i < wq_.size(); ++i) {
    if (wq_[i].req.ctx == req_ctx) {
      Tcb* t = wq_[i].tcb;
      wq_[i] = wq_.back();
      wq_.pop_back();
      wq_len_.store(static_cast<std::uint32_t>(wq_.size()),
                    std::memory_order_relaxed);
      blocked_.fetch_sub(1, std::memory_order_relaxed);
      enqueue_or_inject(t);
      return true;
    }
  }
  for (std::size_t i = 0; i < generic_wq_.size(); ++i) {
    if (generic_wq_[i].req.ctx == req_ctx) {
      Tcb* t = generic_wq_[i].tcb;
      generic_wq_[i] = generic_wq_.back();
      generic_wq_.pop_back();
      generic_len_.store(static_cast<std::uint32_t>(generic_wq_.size()),
                         std::memory_order_relaxed);
      blocked_.fetch_sub(1, std::memory_order_relaxed);
      enqueue_or_inject(t);
      return true;
    }
  }
  return false;
}

Tcb* Scheduler::pick_next(Worker& w) {
  w.q_mu.lock();
  for (int p = kNumPriorities - 1; p >= 0; --p) {
    TcbQueue& q = w.run_q[p];
    if (ctrl_ != nullptr && q.size() > 1) {
      // Decision point "pick" (workers=1 under a controller): rotate the
      // level so any queued thread can be the one the head-of-queue scan
      // below sees first (0 keeps production FIFO order). Priorities
      // stay strict: the controller only permutes within one level.
      std::size_t r = ctrl_->pick(q.size()) % q.size();
      while (r-- > 0) q.push_back(q.pop_front());
    }
    // Bound the scan: each PS-parked thread whose message has not arrived
    // is rotated to the back, so one pass over the initial occupancy
    // either finds a runnable thread or proves there is none at this
    // priority right now.
    std::size_t scan = q.size();
    while (scan-- > 0) {
      Tcb* t = q.pop_front();
      if (t->poll_active.load(std::memory_order_acquire)) {
        ++w.stats.partial_poll_tests;  // a "partial switch" (paper §4.2 PS)
        if (trace_ != nullptr) trace_->record(TraceEvent::PollTest, t->id);
        bool take = false;
        if (t->cancel_requested.load(std::memory_order_relaxed) &&
            !t->cancel_disabled.load(std::memory_order_relaxed)) {
          take = true;  // wake so the wait can act on cancel
        } else if (t->poll.test(t->poll.ctx)) {
          take = true;
        }
        if (take) {
          // Claim the wakeup; a concurrent timer fire may win, in which
          // case the fiber still runs (timed_out set) and the wait code
          // re-tests the request — completion wins over the timeout.
          if (t->poll_active.exchange(false, std::memory_order_acq_rel)) {
            ps_parked_.fetch_sub(1, std::memory_order_relaxed);
          }
          w.q_len.fetch_sub(1, std::memory_order_relaxed);
          w.q_mu.unlock();
          return t;
        }
        q.push_back(t);
        continue;
      }
      w.q_len.fetch_sub(1, std::memory_order_relaxed);
      ++w.stats.local_hits;
      w.q_mu.unlock();
      return t;
    }
  }
  w.q_mu.unlock();
  return nullptr;
}

Tcb* Scheduler::try_steal(Worker& w) {
  const unsigned n = nworkers_;
  w.steal_rng = w.steal_rng * 6364136223846793005ull + 1442695040888963407ull;
  const unsigned start = static_cast<unsigned>(w.steal_rng >> 33) % n;
  for (unsigned k = 0; k < n; ++k) {
    const unsigned vi = (start + k) % n;
    if (vi == w.index) continue;
    Worker& v = *workers_[vi];
    if (v.q_len.load(std::memory_order_relaxed) == 0) continue;
    v.q_mu.lock();
    for (int p = kNumPriorities - 1; p >= 0; --p) {
      for (Tcb* t = v.run_q[p].front(); t != nullptr; t = t->qnext) {
        // PS-parked fibers are never stolen: their owner keeps testing
        // the request, and the claim protocol assumes one polling home.
        if (t->poll_active.load(std::memory_order_acquire)) continue;
        v.run_q[p].remove(t);
        v.q_len.fetch_sub(1, std::memory_order_relaxed);
        t->home_worker.store(w.index, std::memory_order_relaxed);
        v.q_mu.unlock();
        ++w.stats.steals;
        return t;
      }
    }
    v.q_mu.unlock();
  }
  return nullptr;
}

void Scheduler::worker_loop(Worker& w) {
  while (active_.load(std::memory_order_acquire) != 0) {
    ++w.stats.sched_points;
    w.stats.waiting_sum += msg_waiting_.load(std::memory_order_relaxed);
    ++w.stats.waiting_samples;
    if (ctrl_ != nullptr) ctrl_->on_sched_point();  // workers=1 only
    if (inject_len_.load(std::memory_order_relaxed) != 0) drain_inject(w);
    maybe_expire_timers();
    wq_scan(w);
    Tcb* next = pick_next(w);
    if (next == nullptr && nworkers_ > 1) next = try_steal(w);
    if (next == nullptr) {
      idle_wait(w);
      continue;
    }
    // Found work: release the spinner role so another idler can poll.
    int exp = static_cast<int>(w.index);
    spinner_.compare_exchange_strong(exp, -1, std::memory_order_relaxed);
    if (const HbHooks* hb = hb_hooks()) hb->progress(this);
    switch_to(w, next);
  }
}

void Scheduler::idle_wait(Worker& w) {
  if (nworkers_ == 1) {
    // The happens-before checker (chant::hb) sees every idle pass: it
    // decides globally (across all registered schedulers) whether the
    // world has quiesced with fibers still blocked, and gets first
    // crack at diagnosing a deadlock before the local abort below.
    const bool locally_dead =
        ps_parked_.load(std::memory_order_relaxed) == 0 &&
        wq_len_.load(std::memory_order_relaxed) == 0 &&
        generic_len_.load(std::memory_order_relaxed) == 0 &&
        timers_live_.load(std::memory_order_relaxed) == 0 &&
        inject_len_.load(std::memory_order_seq_cst) == 0 &&
        blocked_.load(std::memory_order_relaxed) > 0;
    if (const HbHooks* hb = hb_hooks()) {
      if (hb->quiesce(this, timers_live_.load(std::memory_order_relaxed),
                      generic_len_.load(std::memory_order_relaxed),
                      locally_dead)) {
        // Either the stuck fibers were canceled (runnable now), or the
        // checker is mid-diagnosis and asked us to hold the abort below.
        return;
      }
    }
    // Single worker: the old scheduler's exact idle behavior, including
    // the whole-process deadlock diagnosis.
    if (locally_dead) {
      std::fprintf(stderr,
                   "lwt: deadlock — %u thread(s) blocked with nothing "
                   "runnable\n%s",
                   blocked_.load(std::memory_order_relaxed),
                   debug_dump().c_str());
      std::abort();
    }
    ++w.stats.idle_spins;
    if (ctrl_ != nullptr) ctrl_->on_idle();
    if (ctrl_ == nullptr && clock_fn_ == nullptr &&
        timers_live_.load(std::memory_order_relaxed) != 0 &&
        ps_parked_.load(std::memory_order_relaxed) == 0 &&
        wq_len_.load(std::memory_order_relaxed) == 0 &&
        generic_len_.load(std::memory_order_relaxed) == 0 &&
        inject_len_.load(std::memory_order_seq_cst) == 0) {
      // Only timer-parked fibers remain and the clock is real time:
      // sleep the OS thread toward the earliest deadline instead of
      // spinning. Capped so a cross-thread inject never oversleeps by
      // much.
      const std::uint64_t nd =
          next_deadline_cache_.load(std::memory_order_relaxed);
      const std::uint64_t t = now();
      if (nd > t) {
        std::uint64_t slice = nd - t;
        if (slice > 1'000'000) slice = 1'000'000;
        std::this_thread::sleep_for(std::chrono::nanoseconds(slice));
      }
      return;
    }
    if (idle_hook_ != nullptr) idle_hook_(idle_ctx_);
    return;
  }

  ++w.stats.idle_spins;
  if (w.q_len.load(std::memory_order_relaxed) != 0) {
    // Our queue holds only PS-parked fibers: keep polling them, but
    // donate the timeslice so co-scheduled processes make progress.
    if (idle_hook_ != nullptr) {
      idle_hook_(idle_ctx_);
    } else {
      std::this_thread::yield();
    }
    return;
  }
  const bool pollable =
      wq_len_.load(std::memory_order_relaxed) != 0 ||
      generic_len_.load(std::memory_order_relaxed) != 0 ||
      next_deadline_cache_.load(std::memory_order_relaxed) != kNoDeadline;
  if (pollable) {
    // One worker stays hot to keep testing WQ/generic requests and the
    // timer wheel, preserving message-completion latency.
    int exp = -1;
    if (spinner_.load(std::memory_order_relaxed) ==
            static_cast<int>(w.index) ||
        spinner_.compare_exchange_strong(exp, static_cast<int>(w.index),
                                         std::memory_order_relaxed)) {
      if (idle_hook_ != nullptr) {
        idle_hook_(idle_ctx_);
      } else {
        std::this_thread::yield();
      }
      return;
    }
  }
  // Nothing to do here: park until an injector or a loaded peer pokes
  // us. The 1 ms bound keeps any lost-wakeup window harmless. Release
  // the spinner role first (nothing is pollable any more) so a later
  // idler can claim it.
  int exp = static_cast<int>(w.index);
  spinner_.compare_exchange_strong(exp, -1, std::memory_order_relaxed);
  idle_workers_.fetch_add(1, std::memory_order_seq_cst);
  bool work = inject_len_.load(std::memory_order_seq_cst) != 0 ||
              active_.load(std::memory_order_acquire) == 0;
  if (!work) {
    for (const auto& other : workers_) {
      if (other->q_len.load(std::memory_order_relaxed) != 0) {
        work = true;
        break;
      }
    }
  }
  if (!work &&
      idle_workers_.load(std::memory_order_seq_cst) == nworkers_ &&
      ps_parked_.load(std::memory_order_relaxed) == 0 &&
      wq_len_.load(std::memory_order_relaxed) == 0 &&
      generic_len_.load(std::memory_order_relaxed) == 0 &&
      timers_live_.load(std::memory_order_relaxed) == 0 &&
      inject_len_.load(std::memory_order_seq_cst) == 0) {
    // Every worker is idle (none holds a running fiber), every run queue
    // and the injection queue are empty, and no timer or pollable wait
    // can ever make progress — the multi-worker analogue of the
    // single-worker deadlock diagnosis. blocked_ == active_ confirms no
    // fiber is mid-transition on another worker.
    const std::uint32_t blocked = blocked_.load(std::memory_order_acquire);
    const std::uint32_t active = active_.load(std::memory_order_acquire);
    if (active != 0 && blocked == active) {
      std::fprintf(stderr,
                   "lwt: deadlock — %u thread(s) blocked with nothing "
                   "runnable on any of %u workers\n%s",
                   blocked, nworkers_, debug_dump().c_str());
      std::abort();
    }
  }
  if (!work) {
    ++w.stats.parks;
    std::unique_lock<std::mutex> lk(park_mu_);
    park_cv_.wait_for(lk, std::chrono::milliseconds(1));
  }
  idle_workers_.fetch_sub(1, std::memory_order_seq_cst);
}

void Scheduler::unpark_one() {
  if (nworkers_ <= 1) return;
  if (idle_workers_.load(std::memory_order_seq_cst) == 0) return;
  std::lock_guard<std::mutex> lk(park_mu_);
  park_cv_.notify_one();
}

void Scheduler::unpark_all() {
  if (nworkers_ <= 1) return;
  std::lock_guard<std::mutex> lk(park_mu_);
  park_cv_.notify_all();
}

// -------------------------------------------------------- parks and wakes

void Scheduler::park_switch(SyncGuard& g) {
  Worker* w = this_worker();
  Tcb* me = w->current;
  // Keep the wait lock across the switch: the worker releases it after
  // the swap, so a waker that finds `me` on a wait list can never
  // enqueue it while it is still running on this stack.
  g.disown();
  w->pending_unlock = &wait_mu_;
  ctx_swap(me->ctx, w->sched_ctx, backend_);
  // Resumed — possibly on a different worker; `w` is stale here.
}

void Scheduler::yield() {
  Worker* w = this_worker();
  Tcb* me = w->current;
  check_cancel();
  ++w->stats.yields;
  if (trace_ != nullptr) trace_->record(TraceEvent::Yield, me->id);
  // Deferred self-enqueue: the worker pushes us after the swap, so a
  // stealer cannot resume this fiber while it is still switching out.
  w->pending_enqueue = me;
  ctx_swap(me->ctx, w->sched_ctx, backend_);
  check_cancel();
}

void Scheduler::park_on(TcbQueue& wl) {
  SyncGuard g(*this);
  park_on(wl, g);
}

void Scheduler::park_on(TcbQueue& wl, SyncGuard& g) {
  Tcb* me = this_worker()->current;
  if (trace_ != nullptr) trace_->record(TraceEvent::Park, me->id);
  me->state.store(ThreadState::Blocked, std::memory_order_relaxed);
  me->waiting_on = &wl;
  wl.push_back(me);
  blocked_.fetch_add(1, std::memory_order_relaxed);
  park_switch(g);
}

bool Scheduler::park_on_until(TcbQueue& wl, std::uint64_t deadline_ns) {
  SyncGuard g(*this);
  return park_on_until(wl, deadline_ns, g);
}

bool Scheduler::park_on_until(TcbQueue& wl, std::uint64_t deadline_ns,
                              SyncGuard& g) {
  if (deadline_ns == kNoDeadline) {
    park_on(wl, g);
    return true;
  }
  Tcb* me = this_worker()->current;
  if (now() >= deadline_ns) {
    g.unlock();
    return false;
  }
  const TimerWheel::TimerId tid = arm_timer(deadline_ns, me);
  park_on(wl, g);
  {
    SyncGuard g2(*this);
    disarm_timer(tid);
  }
  const bool timed_out = me->timed_out.load(std::memory_order_relaxed);
  me->timed_out.store(false, std::memory_order_relaxed);
  return !timed_out;
}

Tcb* Scheduler::wake_one(TcbQueue& wl) {
  SyncGuard g(*this);
  return wake_one(wl, g);
}

Tcb* Scheduler::wake_one(TcbQueue& wl, SyncGuard& g) {
  (void)g;
  Tcb* t = wl.pop_front();
  if (t == nullptr) return nullptr;
  t->waiting_on = nullptr;
  blocked_.fetch_sub(1, std::memory_order_relaxed);
  enqueue_or_inject(t);
  return t;
}

std::size_t Scheduler::wake_all(TcbQueue& wl) {
  SyncGuard g(*this);
  return wake_all(wl, g);
}

std::size_t Scheduler::wake_all(TcbQueue& wl, SyncGuard& g) {
  std::size_t n = 0;
  while (wake_one(wl, g) != nullptr) ++n;
  return n;
}

void Scheduler::ready(Tcb* t) {
  SyncGuard g(*this);
  if (t->state.load(std::memory_order_acquire) != ThreadState::Blocked) return;
  // Hardening: historically callers guaranteed `t` was parked on no
  // TcbQueue. Route the general case correctly instead of corrupting
  // the list it sits on.
  if (t->waiting_on != nullptr) {
    t->waiting_on->remove(t);
    t->waiting_on = nullptr;
  }
  blocked_.fetch_sub(1, std::memory_order_relaxed);
  enqueue_or_inject(t);
}

// ------------------------------------------------------ finish / join / etc

void Scheduler::exit_current(void* retval) { finish_current(retval); }

void Scheduler::finish_current(void* retval) {
  Worker* w = this_worker();
  Tcb* me = w->current;
  me->retval = retval;
  run_tls_dtors(me);
  if (const HbHooks* hb = hb_hooks()) hb->thread_exit(me, me->detached);
  SyncGuard g(*this);
  if (trace_ != nullptr) trace_->record(TraceEvent::Finish, me->id);
  me->state.store(ThreadState::Finished, std::memory_order_release);
  if (me->joiner != nullptr) {
    Tcb* j = me->joiner;
    me->joiner = nullptr;
    if (j->state.load(std::memory_order_relaxed) == ThreadState::Blocked) {
      blocked_.fetch_sub(1, std::memory_order_relaxed);
      enqueue_or_inject(j);
    }
  }
  if (me->detached) {
    w->pending_reap = me;  // worker frees the stack after switching away
  } else {
    zombies_.push_back(me);
  }
  if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    unpark_all();  // last fiber: let parked workers observe shutdown
  }
  // Hold the wait lock across the final switch: a joiner we just woke
  // may otherwise reap `me` while this stack is still live.
  g.disown();
  w->pending_unlock = &wait_mu_;
  ctx_swap_final(me->ctx, w->sched_ctx, backend_);
}

void Scheduler::reap(Tcb* t) {
  stacks_.release(t->stack);
  delete t;
}

void* Scheduler::join(Tcb* t) {
  void* ret = nullptr;
  (void)join_until(t, kNoDeadline, &ret);  // cannot time out
  return ret;
}

bool Scheduler::join_until(Tcb* t, std::uint64_t deadline_ns, void** retval) {
  Tcb* me = this_worker()->current;
  check_cancel();
  SyncGuard g(*this);
  if (t == me || t->detached || t->join_taken) {
    std::fprintf(stderr, "lwt: invalid join (self/detached/double)\n");
    std::abort();
  }
  if (t->state.load(std::memory_order_acquire) != ThreadState::Finished) {
    if (deadline_ns != kNoDeadline && now() >= deadline_ns) return false;
    t->join_taken = true;
    t->joiner = me;
    TimerWheel::TimerId tid = 0;
    if (deadline_ns != kNoDeadline) tid = arm_timer(deadline_ns, me);
    if (const HbHooks* hb = hb_hooks()) {
      hb->wait_begin(me, t, "lwt::Scheduler::join",
                     deadline_ns != kNoDeadline);
    }
    me->state.store(ThreadState::Blocked, std::memory_order_relaxed);
    me->waiting_on = nullptr;
    blocked_.fetch_add(1, std::memory_order_relaxed);
    park_switch(g);
    if (const HbHooks* hb = hb_hooks()) hb->wait_end(me);
    if (tid != 0) {
      SyncGuard g2(*this);
      disarm_timer(tid);
    }
    const bool timed_out = me->timed_out.load(std::memory_order_relaxed);
    me->timed_out.store(false, std::memory_order_relaxed);
    // Re-acquire before inspecting the target: if it is finishing right
    // now on another worker, this lock acquisition serializes with the
    // finisher's post-switch release, so Finished here implies its
    // stack is no longer in use and reaping is safe.
    SyncGuard g2(*this);
    if (t->state.load(std::memory_order_acquire) != ThreadState::Finished) {
      // Woken without the target finishing: timeout or cancellation.
      // Give up the claim so the target stays joinable.
      t->joiner = nullptr;
      t->join_taken = false;
      g2.unlock();
      if (timed_out) return false;
      check_cancel();
      std::fprintf(stderr, "lwt: join woke without target finishing\n");
      std::abort();
    }
    for (auto it = zombies_.begin(); it != zombies_.end(); ++it) {
      if (*it == t) {
        zombies_.erase(it);
        break;
      }
    }
    g2.unlock();
  } else {
    t->join_taken = true;
    for (auto it = zombies_.begin(); it != zombies_.end(); ++it) {
      if (*it == t) {
        zombies_.erase(it);
        break;
      }
    }
    g.unlock();
  }
  if (retval != nullptr) *retval = t->canceled ? kCanceled : t->retval;
  if (const HbHooks* hb = hb_hooks()) hb->thread_join(me, t);
  reap(t);
  return true;
}

void Scheduler::detach(Tcb* t) {
  SyncGuard g(*this);
  if (t->join_taken) return;
  if (t->state.load(std::memory_order_acquire) == ThreadState::Finished) {
    for (auto it = zombies_.begin(); it != zombies_.end(); ++it) {
      if (*it == t) {
        zombies_.erase(it);
        break;
      }
    }
    g.unlock();
    reap(t);
    return;
  }
  t->detached = true;
}

void Scheduler::cancel(Tcb* t) {
  t->cancel_requested.store(true, std::memory_order_release);
  if (t->cancel_disabled.load(std::memory_order_acquire)) return;
  SyncGuard g(*this);
  if (t->state.load(std::memory_order_acquire) != ThreadState::Blocked) {
    // Ready + PS-parked: pick_next() notices cancel_requested and wakes
    // it. Running: the thread hits a cancellation point itself.
    return;
  }
  // Parked on a wait list, the WQ, or in join: eject and make ready;
  // the wait code re-checks cancellation on resume.
  if (t->waiting_on != nullptr) {
    t->waiting_on->remove(t);
    t->waiting_on = nullptr;
    blocked_.fetch_sub(1, std::memory_order_relaxed);
    enqueue_or_inject(t);
    return;
  }
  for (std::size_t i = 0; i < wq_.size(); ++i) {
    if (wq_[i].tcb == t) {
      wq_[i] = wq_.back();
      wq_.pop_back();
      wq_len_.store(static_cast<std::uint32_t>(wq_.size()),
                    std::memory_order_relaxed);
      blocked_.fetch_sub(1, std::memory_order_relaxed);
      enqueue_or_inject(t);
      return;
    }
  }
  for (std::size_t i = 0; i < generic_wq_.size(); ++i) {
    if (generic_wq_[i].tcb == t) {
      generic_wq_[i] = generic_wq_.back();
      generic_wq_.pop_back();
      generic_len_.store(static_cast<std::uint32_t>(generic_wq_.size()),
                         std::memory_order_relaxed);
      blocked_.fetch_sub(1, std::memory_order_relaxed);
      enqueue_or_inject(t);
      return;
    }
  }
  // Blocked in join: wake it; join() notices and re-checks.
  blocked_.fetch_sub(1, std::memory_order_relaxed);
  enqueue_or_inject(t);
}

bool Scheduler::set_cancel_enabled(bool enabled) {
  Tcb* me = this_worker()->current;
  const bool prev = !me->cancel_disabled.load(std::memory_order_relaxed);
  me->cancel_disabled.store(!enabled, std::memory_order_release);
  return prev;
}

void Scheduler::check_cancel() {
  Worker* w = this_worker();
  Tcb* me = w != nullptr ? w->current : nullptr;
  if (me != nullptr && me->cancel_requested.load(std::memory_order_acquire) &&
      !me->cancel_disabled.load(std::memory_order_relaxed)) {
    me->cancel_requested.store(false, std::memory_order_relaxed);
    throw CancelInterrupt{};
  }
}

void Scheduler::set_priority(Tcb* t, int priority) {
  if (priority < 0) priority = 0;
  if (priority >= kNumPriorities) priority = kNumPriorities - 1;
  if (!workers_.empty() &&
      t->state.load(std::memory_order_acquire) == ThreadState::Ready) {
    // Try to requeue in place so the change takes effect immediately.
    // home_worker is a hint; verify under that worker's queue lock.
    Worker& w =
        *workers_[t->home_worker.load(std::memory_order_relaxed) % nworkers_];
    w.q_mu.lock();
    const int oldp = t->priority.load(std::memory_order_relaxed);
    if (t->state.load(std::memory_order_relaxed) == ThreadState::Ready &&
        w.run_q[oldp].remove(t)) {
      t->priority.store(priority, std::memory_order_relaxed);
      w.run_q[priority].push_back(t);
      w.q_mu.unlock();
      return;
    }
    w.q_mu.unlock();
  }
  // Not queued here (blocked, running, injected, or mid-migration): the
  // new priority takes effect at the next enqueue.
  t->priority.store(priority, std::memory_order_relaxed);
}

// ------------------------------------------------- polling-policy waits

bool Scheduler::poll_block_tp(const PollRequest& req,
                              std::uint64_t deadline_ns) {
  Tcb* me = this_worker()->current;
  me->msg_waiting = true;
  msg_waiting_.fetch_add(1, std::memory_order_relaxed);
  // Paper Fig. 5: re-test on every resumption; yield (a full context
  // switch through the scheduler) after every failed test. After a burst
  // of consecutive failures nothing local is making progress — the data
  // must come from another simulated processor, so donate the OS
  // timeslice (essential when processors share cores; the event counters
  // the experiments report are unaffected).
  unsigned fails = 0;
  bool completed = true;
  while (!req.test(req.ctx)) {
    if (deadline_ns != kNoDeadline && now() >= deadline_ns) {
      completed = false;
      break;
    }
    ++fails;
    try {
      yield();
    } catch (...) {
      me->msg_waiting = false;
      msg_waiting_.fetch_sub(1, std::memory_order_relaxed);
      throw;
    }
    if (fails >= 4) {
      if (idle_hook_ != nullptr) {
        idle_hook_(idle_ctx_);
      } else {
        std::this_thread::yield();
      }
    }
  }
  me->msg_waiting = false;
  msg_waiting_.fetch_sub(1, std::memory_order_relaxed);
  return completed;
}

bool Scheduler::poll_block_wq(const PollRequest& req,
                              std::uint64_t deadline_ns) {
  Tcb* me = this_worker()->current;
  check_cancel();
  if (req.test(req.ctx)) return true;  // fast path: already complete
  if (deadline_ns != kNoDeadline && now() >= deadline_ns) return false;
  me->msg_waiting = true;
  msg_waiting_.fetch_add(1, std::memory_order_relaxed);
  TimerWheel::TimerId tid = 0;
  bool ready_before_park = false;
  {
    SyncGuard g(*this);
    // Lost-wakeup closure: an event-driven waker (poll_wake) makes the
    // request ready *before* taking wait_mu_ to look for a parked
    // entry. Re-testing here, under the same lock, makes the race safe
    // in both orders — either the waker finds our entry, or this test
    // sees its readiness. Without it, a completion landing between the
    // unlocked fast-path test and the push would strand the fiber when
    // no per-entry scan runs (WQ group-poll mode skips wq_ entries).
    if (req.test(req.ctx)) {
      ready_before_park = true;
    } else {
      if (deadline_ns != kNoDeadline) tid = arm_timer(deadline_ns, me);
      wq_.push_back(WqEntry{req, me});
      wq_len_.store(static_cast<std::uint32_t>(wq_.size()),
                    std::memory_order_relaxed);
      me->state.store(ThreadState::Blocked, std::memory_order_relaxed);
      me->waiting_on = nullptr;  // parked on wq_, not a TcbQueue
      blocked_.fetch_add(1, std::memory_order_relaxed);
      park_switch(g);
    }
  }
  me->msg_waiting = false;
  msg_waiting_.fetch_sub(1, std::memory_order_relaxed);
  if (ready_before_park) return true;
  if (tid != 0) {
    SyncGuard g2(*this);
    disarm_timer(tid);
  }
  const bool timed_out = me->timed_out.load(std::memory_order_relaxed);
  me->timed_out.store(false, std::memory_order_relaxed);
  check_cancel();  // cancel() may have ejected us before completion
  // Completion wins a race with the timer: re-test once before failing.
  return !timed_out || req.test(req.ctx);
}

bool Scheduler::poll_block_generic(const PollRequest& req,
                                   std::uint64_t deadline_ns) {
  Tcb* me = this_worker()->current;
  check_cancel();
  if (req.test(req.ctx)) return true;  // fast path
  if (deadline_ns != kNoDeadline && now() >= deadline_ns) return false;
  TimerWheel::TimerId tid = 0;
  {
    SyncGuard g(*this);
    if (req.test(req.ctx)) return true;  // lost-wakeup closure (see WQ)
    if (deadline_ns != kNoDeadline) tid = arm_timer(deadline_ns, me);
    generic_wq_.push_back(WqEntry{req, me});
    generic_len_.store(static_cast<std::uint32_t>(generic_wq_.size()),
                       std::memory_order_relaxed);
    me->state.store(ThreadState::Blocked, std::memory_order_relaxed);
    me->waiting_on = nullptr;
    blocked_.fetch_add(1, std::memory_order_relaxed);
    park_switch(g);
  }
  if (tid != 0) {
    SyncGuard g2(*this);
    disarm_timer(tid);
  }
  const bool timed_out = me->timed_out.load(std::memory_order_relaxed);
  me->timed_out.store(false, std::memory_order_relaxed);
  check_cancel();  // cancel() may have ejected us before completion
  return !timed_out || req.test(req.ctx);
}

bool Scheduler::poll_block_ps(const PollRequest& req,
                              std::uint64_t deadline_ns) {
  Worker* w = this_worker();
  Tcb* me = w->current;
  check_cancel();
  if (req.test(req.ctx)) return true;
  if (deadline_ns != kNoDeadline && now() >= deadline_ns) return false;
  me->msg_waiting = true;
  msg_waiting_.fetch_add(1, std::memory_order_relaxed);
  // Publish the poll before arming the timer: a fire that beats the
  // publication would find poll_active false and be dropped as stale,
  // losing the timeout forever.
  me->poll = req;
  me->poll_active.store(true, std::memory_order_release);
  ps_parked_.fetch_add(1, std::memory_order_relaxed);
  TimerWheel::TimerId tid = 0;
  if (deadline_ns != kNoDeadline) {
    SyncGuard g(*this);
    tid = arm_timer(deadline_ns, me);
  }
  // Deferred self-enqueue (like yield): we stay Ready in our worker's
  // queue; the scheduler tests the request before restoring us.
  w->pending_enqueue = me;
  ctx_swap(me->ctx, w->sched_ctx, backend_);
  me->msg_waiting = false;
  msg_waiting_.fetch_sub(1, std::memory_order_relaxed);
  if (tid != 0) {
    SyncGuard g2(*this);
    disarm_timer(tid);
  }
  const bool timed_out = me->timed_out.load(std::memory_order_relaxed);
  me->timed_out.store(false, std::memory_order_relaxed);
  check_cancel();
  return !timed_out || req.test(req.ctx);
}

void Scheduler::set_wq_group_poll(WqGroupPoll hook, void* hook_ctx) {
  wq_group_poll_ = hook;
  wq_group_ctx_ = hook_ctx;
}

void Scheduler::set_idle_hook(void (*hook)(void*), void* ctx) {
  idle_hook_ = hook;
  idle_ctx_ = ctx;
}

// -------------------------------------------------------- thread-local data

int Scheduler::key_create(void (*dtor)(void*)) {
  SyncGuard g(*this);
  for (std::size_t k = 0; k < kMaxTlsKeys; ++k) {
    if (!tls_keys_[k].used) {
      tls_keys_[k].used = true;
      tls_keys_[k].dtor = dtor;
      return static_cast<int>(k);
    }
  }
  return -1;
}

void Scheduler::key_delete(int key) {
  if (key < 0 || key >= static_cast<int>(kMaxTlsKeys)) return;
  SyncGuard g(*this);
  tls_keys_[static_cast<std::size_t>(key)] = TlsKey{};
}

void Scheduler::set_specific(int key, void* value) {
  if (key < 0 || key >= static_cast<int>(kMaxTlsKeys)) return;
  this_worker()->current->tls[static_cast<std::size_t>(key)] = value;
}

void* Scheduler::get_specific(int key) const {
  if (key < 0 || key >= static_cast<int>(kMaxTlsKeys)) return nullptr;
  return this_worker()->current->tls[static_cast<std::size_t>(key)];
}

void Scheduler::run_tls_dtors(Tcb* t) {
  // As in pthreads: iterate until a pass makes no progress, bounded.
  // The key table is snapshotted per pass so user destructors run
  // without the wait lock (they may create/delete keys themselves).
  for (int pass = 0; pass < 4; ++pass) {
    std::array<TlsKey, kMaxTlsKeys> keys;
    {
      SyncGuard g(*this);
      keys = tls_keys_;
    }
    bool again = false;
    for (std::size_t k = 0; k < kMaxTlsKeys; ++k) {
      void* v = t->tls[k];
      if (v != nullptr && keys[k].used && keys[k].dtor != nullptr) {
        t->tls[k] = nullptr;
        keys[k].dtor(v);
        again = true;
      }
    }
    if (!again) break;
  }
}

// ------------------------------------------------------------ introspection

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  wait_mu_.lock();
  s = base_stats_;
  wait_mu_.unlock();
  // Worker counters are plain (each worker writes only its own): the sum
  // is exact whenever the scheduler is quiescent or single-worker, which
  // is when tests and benchmarks read it.
  for (const auto& w : workers_) accumulate(s, w->stats);
  s.injections += injections_.load(std::memory_order_relaxed);
  return s;
}

std::string Scheduler::debug_dump() const {
  std::ostringstream os;
  os << "scheduler: active=" << active_.load(std::memory_order_relaxed)
     << " blocked=" << blocked_.load(std::memory_order_relaxed)
     << " ps_parked=" << ps_parked_.load(std::memory_order_relaxed)
     << " wq=" << wq_len_.load(std::memory_order_relaxed)
     << " workers=" << nworkers_ << "\n";
  for (const auto& wp : workers_) {
    for (int p = kNumPriorities - 1; p >= 0; --p) {
      for (Tcb* t = wp->run_q[p].front(); t != nullptr; t = t->qnext) {
        os << "  w" << wp->index << " prio " << p << " tcb #" << t->id << " '"
           << t->name << "' "
           << state_name(t->state.load(std::memory_order_relaxed))
           << (t->poll_active.load(std::memory_order_relaxed) ? " [poll]" : "")
           << "\n";
      }
    }
  }
  for (const auto& e : wq_) {
    os << "  wq tcb #" << e.tcb->id << " '" << e.tcb->name << "'\n";
  }
  return os.str();
}

// ------------------------------------------------------------- fiber boot

namespace detail {

[[noreturn]] void fiber_boot(Tcb* tcb) {
  Scheduler* sched = tcb->sched;
  ctx_note_fiber_entry(sched->backend());
  void* ret = nullptr;
  bool canceled = false;
  try {
    ret = tcb->entry(tcb->arg);
  } catch (const CancelInterrupt&) {
    canceled = true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lwt: uncaught exception in fiber #%u '%s': %s\n",
                 tcb->id, tcb->name, e.what());
    std::terminate();
  } catch (...) {
    std::fprintf(stderr, "lwt: uncaught exception in fiber #%u '%s'\n",
                 tcb->id, tcb->name);
    std::terminate();
  }
  tcb->canceled = canceled;
  sched->finish_current(canceled ? kCanceled : ret);
}

}  // namespace detail

}  // namespace lwt
