// scheduler.cpp — user-level thread scheduling with pollable waits.
#include "lwt/scheduler.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <sstream>
#include <thread>

namespace lwt {

namespace {
thread_local Scheduler* tl_sched = nullptr;

const char* state_name(ThreadState s) {
  switch (s) {
    case ThreadState::Ready: return "ready";
    case ThreadState::Running: return "running";
    case ThreadState::Blocked: return "blocked";
    case ThreadState::Finished: return "finished";
  }
  return "?";
}
}  // namespace

// ---------------------------------------------------------------- TcbQueue

void TcbQueue::push_back(Tcb* t) noexcept {
  t->qnext = nullptr;
  t->qprev = tail_;
  if (tail_ != nullptr) {
    tail_->qnext = t;
  } else {
    head_ = t;
  }
  tail_ = t;
  ++size_;
}

Tcb* TcbQueue::pop_front() noexcept {
  Tcb* t = head_;
  if (t == nullptr) return nullptr;
  head_ = t->qnext;
  if (head_ != nullptr) {
    head_->qprev = nullptr;
  } else {
    tail_ = nullptr;
  }
  t->qnext = t->qprev = nullptr;
  --size_;
  return t;
}

bool TcbQueue::remove(Tcb* t) noexcept {
  // Membership check: a node is in *some* queue iff it has neighbours or
  // is the head; callers track which queue via Tcb::waiting_on.
  if (head_ == nullptr) return false;
  if (t != head_ && t->qprev == nullptr && t->qnext == nullptr) return false;
  if (t->qprev != nullptr) t->qprev->qnext = t->qnext;
  if (t->qnext != nullptr) t->qnext->qprev = t->qprev;
  if (head_ == t) head_ = t->qnext;
  if (tail_ == t) tail_ = t->qprev;
  t->qnext = t->qprev = nullptr;
  --size_;
  return true;
}

void Tcb::set_name(const char* n) noexcept {
  if (n == nullptr) {
    name[0] = '\0';
    return;
  }
  std::snprintf(name, sizeof name, "%s", n);
}

// --------------------------------------------------------------- Scheduler

Scheduler::Scheduler(ContextBackend backend) : backend_(backend) {
#if defined(LWT_NO_ASM_CONTEXT)
  backend_ = ContextBackend::Ucontext;
#endif
}

Scheduler::~Scheduler() {
  for (Tcb* z : zombies_) {
    stacks_.release(z->stack);
    delete z;
  }
  zombies_.clear();
}

Scheduler* Scheduler::current() { return tl_sched; }

Tcb* Scheduler::self() {
  return tl_sched != nullptr ? tl_sched->current_ : nullptr;
}

Tcb* Scheduler::spawn(EntryFn entry, void* arg, const ThreadAttr& attr) {
  auto* t = new Tcb;
  t->entry = entry;
  t->arg = arg;
  t->id = next_id_++;
  t->priority = attr.priority < 0                ? 0
                : attr.priority >= kNumPriorities ? kNumPriorities - 1
                                                  : attr.priority;
  t->detached = attr.detached;
  t->sched = this;
  t->set_name(attr.name);
  t->stack = stacks_.acquire(attr.stack_size);
  ctx_make(t->ctx, backend_, t->stack.base, t->stack.size, t);
  ++active_;
  ++stats_.spawns;
  if (trace_ != nullptr) trace_->record(TraceEvent::Spawn, t->id);
  enqueue_ready(t);
  return t;
}

void* Scheduler::run_main(EntryFn entry, void* arg, const ThreadAttr& attr) {
  if (running_) {
    std::fprintf(stderr, "lwt: run_main is not reentrant\n");
    std::abort();
  }
  Scheduler* prev = tl_sched;
  tl_sched = this;
  running_ = true;
  ctx_bind_os_stack(sched_ctx_);
  Tcb* main_tcb = spawn(entry, arg, attr);
  if (main_tcb->name[0] == '\0') main_tcb->set_name("main");
  main_tcb->detached = false;
  schedule_loop();
  running_ = false;
  tl_sched = prev;
  void* ret = main_tcb->retval;
  // Reap the main fiber (it is a zombie by now unless someone joined it).
  for (auto it = zombies_.begin(); it != zombies_.end(); ++it) {
    if (*it == main_tcb) {
      zombies_.erase(it);
      stacks_.release(main_tcb->stack);
      delete main_tcb;
      break;
    }
  }
  return ret;
}

// ----------------------------------------------------------- time & timers

std::uint64_t Scheduler::now() const {
  if (clock_fn_ != nullptr) return clock_fn_(clock_ctx_);
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

std::uint64_t Scheduler::deadline_after(std::uint64_t delta_ns) const {
  const std::uint64_t t = now();
  return delta_ns >= kNoDeadline - t ? kNoDeadline : t + delta_ns;
}

TimerWheel::TimerId Scheduler::arm_timer(std::uint64_t deadline_ns, Tcb* t) {
  ++stats_.timers_armed;
  return timers_.arm(deadline_ns, t);
}

void Scheduler::disarm_timer(TimerWheel::TimerId id) {
  if (timers_.disarm(id)) ++stats_.timer_cancels;
}

void Scheduler::timeout_wake(Tcb* t) {
  switch (t->state) {
    case ThreadState::Blocked:
      t->timed_out = true;
      ++stats_.timer_fires;
      if (t->waiting_on != nullptr) {
        // Parked on a wait list (sync primitive / sleep via park).
        t->waiting_on->remove(t);
        t->waiting_on = nullptr;
        --blocked_;
        enqueue_ready(t);
        return;
      }
      for (std::size_t i = 0; i < wq_.size(); ++i) {
        if (wq_[i].tcb == t) {
          wq_[i] = wq_.back();
          wq_.pop_back();
          --blocked_;
          enqueue_ready(t);
          return;
        }
      }
      for (std::size_t i = 0; i < generic_wq_.size(); ++i) {
        if (generic_wq_[i].tcb == t) {
          generic_wq_[i] = generic_wq_.back();
          generic_wq_.pop_back();
          --blocked_;
          enqueue_ready(t);
          return;
        }
      }
      // Blocked in join or sleep_until: just make it ready; the wait
      // code inspects timed_out on resume.
      --blocked_;
      enqueue_ready(t);
      return;
    case ThreadState::Ready:
      if (t->poll_active) {
        // PS-parked: drop the poll so pick_next() restores the context;
        // the wait re-tests the request once and then reports timeout.
        t->poll_active = false;
        --ps_parked_;
        t->timed_out = true;
        ++stats_.timer_fires;
      }
      // Plain Ready: the real wakeup beat the timer — stale fire.
      return;
    case ThreadState::Running:
    case ThreadState::Finished:
      return;  // stale fire
  }
}

void Scheduler::expire_timers() {
  if (timers_.armed() == 0) return;
  const std::uint64_t t = now();
  if (timers_.next_deadline() > t) return;
  timers_.expire(
      t,
      [](void* ctx, Tcb* tcb) {
        static_cast<Scheduler*>(ctx)->timeout_wake(tcb);
      },
      this);
}

void Scheduler::sleep_until(std::uint64_t deadline_ns) {
  Tcb* me = current_;
  check_cancel();
  if (deadline_ns == kNoDeadline || now() >= deadline_ns) return;
  ++stats_.sleeps;
  if (trace_ != nullptr) trace_->record(TraceEvent::Park, me->id);
  const TimerWheel::TimerId tid = arm_timer(deadline_ns, me);
  me->state = ThreadState::Blocked;
  me->waiting_on = nullptr;
  ++blocked_;
  ctx_swap(me->ctx, sched_ctx_, backend_);
  disarm_timer(tid);  // no-op on the normal (timer-fired) path
  me->timed_out = false;
  check_cancel();  // cancel() is the only other wake source
}

void Scheduler::sleep_for(std::uint64_t ns) { sleep_until(deadline_after(ns)); }

void Scheduler::enqueue_ready(Tcb* t) {
  if (trace_ != nullptr) trace_->record(TraceEvent::Ready, t->id);
  t->state = ThreadState::Ready;
  t->waiting_on = nullptr;
  run_q_[t->priority].push_back(t);
}

void Scheduler::switch_to(Tcb* t) {
  t->state = ThreadState::Running;
  current_ = t;
  ++stats_.full_switches;
  if (trace_ != nullptr) trace_->record(TraceEvent::SwitchIn, t->id);
  ctx_swap(sched_ctx_, t->ctx, backend_);
  current_ = nullptr;
  if (pending_reap_ != nullptr) {
    reap(pending_reap_);
    pending_reap_ = nullptr;
  }
}

void Scheduler::wq_scan() {
  // Generic (policy-independent) waits are tested at every point, even
  // when a group-poll hook replaces the per-entry WQ scan below.
  for (std::size_t i = 0; i < generic_wq_.size();) {
    if (generic_wq_[i].req.test(generic_wq_[i].req.ctx)) {
      Tcb* t = generic_wq_[i].tcb;
      generic_wq_[i] = generic_wq_.back();
      generic_wq_.pop_back();
      --blocked_;
      enqueue_ready(t);
    } else {
      ++i;
    }
  }
  if (wq_.empty()) return;
  if (wq_group_poll_ != nullptr) {
    // msgtestany-style ablation: one group test per scheduling point.
    (void)wq_group_poll_(wq_group_ctx_, *this);
    return;
  }
  // NX-style: test each outstanding request in turn (paper §4.2, WQ).
  for (std::size_t i = 0; i < wq_.size();) {
    ++stats_.wq_poll_tests;
    if (wq_[i].req.test(wq_[i].req.ctx)) {
      Tcb* t = wq_[i].tcb;
      wq_[i] = wq_.back();
      wq_.pop_back();
      --blocked_;
      enqueue_ready(t);
    } else {
      ++i;
    }
  }
}

bool Scheduler::wq_complete(void* req_ctx) {
  for (std::size_t i = 0; i < wq_.size(); ++i) {
    if (wq_[i].req.ctx == req_ctx) {
      Tcb* t = wq_[i].tcb;
      wq_[i] = wq_.back();
      wq_.pop_back();
      --blocked_;
      enqueue_ready(t);
      return true;
    }
  }
  return false;
}

Tcb* Scheduler::pick_next() {
  for (int p = kNumPriorities - 1; p >= 0; --p) {
    TcbQueue& q = run_q_[p];
    if (ctrl_ != nullptr && q.size() > 1) {
      // Decision point "pick": rotate the level so any queued thread can
      // be the one the head-of-queue scan below sees first (0 keeps
      // production FIFO order). Priorities stay strict: the controller
      // only permutes within one level.
      std::size_t r = ctrl_->pick(q.size()) % q.size();
      while (r-- > 0) q.push_back(q.pop_front());
    }
    // Bound the scan: each PS-parked thread whose message has not arrived
    // is rotated to the back, so one pass over the initial occupancy
    // either finds a runnable thread or proves there is none at this
    // priority right now.
    std::size_t scan = q.size();
    while (scan-- > 0) {
      Tcb* t = q.pop_front();
      if (t->poll_active) {
        ++stats_.partial_poll_tests;  // a "partial switch" (paper §4.2 PS)
        if (trace_ != nullptr) trace_->record(TraceEvent::PollTest, t->id);
        if (t->cancel_requested && !t->cancel_disabled) {
          t->poll_active = false;  // wake so the wait can act on cancel
          --ps_parked_;
          return t;
        }
        if (t->poll.test(t->poll.ctx)) {
          t->poll_active = false;
          --ps_parked_;
          return t;
        }
        q.push_back(t);
        continue;
      }
      return t;
    }
  }
  return nullptr;
}

void Scheduler::schedule_loop() {
  while (active_ > 0) {
    ++stats_.sched_points;
    stats_.waiting_sum += msg_waiting_;
    ++stats_.waiting_samples;
    if (ctrl_ != nullptr) ctrl_->on_sched_point();
    expire_timers();
    wq_scan();
    Tcb* next = pick_next();
    if (next == nullptr) {
      if (ps_parked_ == 0 && wq_.empty() && generic_wq_.empty() &&
          timers_.armed() == 0 && blocked_ > 0) {
        std::fprintf(stderr,
                     "lwt: deadlock — %u thread(s) blocked with nothing "
                     "runnable\n%s",
                     blocked_, debug_dump().c_str());
        std::abort();
      }
      ++stats_.idle_spins;
      if (ctrl_ != nullptr) ctrl_->on_idle();
      if (ctrl_ == nullptr && clock_fn_ == nullptr && timers_.armed() != 0 &&
          ps_parked_ == 0 && wq_.empty() && generic_wq_.empty()) {
        // Only timer-parked fibers remain and the clock is real time:
        // sleep the OS thread toward the earliest deadline instead of
        // spinning. Capped so a concurrently-arriving cancel() from
        // this process (impossible — we are its only OS thread) or a
        // stale heap top never oversleeps by much.
        const std::uint64_t nd = timers_.next_deadline();
        const std::uint64_t t = now();
        if (nd > t) {
          std::uint64_t slice = nd - t;
          if (slice > 1'000'000) slice = 1'000'000;
          std::this_thread::sleep_for(std::chrono::nanoseconds(slice));
        }
        continue;
      }
      if (idle_hook_ != nullptr) idle_hook_(idle_ctx_);
      continue;
    }
    switch_to(next);
  }
}

void Scheduler::yield() {
  Tcb* me = current_;
  check_cancel();
  ++stats_.yields;
  if (trace_ != nullptr) trace_->record(TraceEvent::Yield, me->id);
  enqueue_ready(me);
  ctx_swap(me->ctx, sched_ctx_, backend_);
  check_cancel();
}

void Scheduler::park_on(TcbQueue& wl) {
  Tcb* me = current_;
  if (trace_ != nullptr) trace_->record(TraceEvent::Park, me->id);
  me->state = ThreadState::Blocked;
  me->waiting_on = &wl;
  wl.push_back(me);
  ++blocked_;
  ctx_swap(me->ctx, sched_ctx_, backend_);
}

bool Scheduler::park_on_until(TcbQueue& wl, std::uint64_t deadline_ns) {
  if (deadline_ns == kNoDeadline) {
    park_on(wl);
    return true;
  }
  Tcb* me = current_;
  if (now() >= deadline_ns) return false;
  const TimerWheel::TimerId tid = arm_timer(deadline_ns, me);
  park_on(wl);
  disarm_timer(tid);
  const bool timed_out = me->timed_out;
  me->timed_out = false;
  return !timed_out;
}

Tcb* Scheduler::wake_one(TcbQueue& wl) {
  Tcb* t = wl.pop_front();
  if (t == nullptr) return nullptr;
  --blocked_;
  enqueue_ready(t);
  return t;
}

std::size_t Scheduler::wake_all(TcbQueue& wl) {
  std::size_t n = 0;
  while (wake_one(wl) != nullptr) ++n;
  return n;
}

void Scheduler::ready(Tcb* t) {
  if (t->state != ThreadState::Blocked) return;
  --blocked_;
  enqueue_ready(t);
}

void Scheduler::exit_current(void* retval) { finish_current(retval); }

void Scheduler::finish_current(void* retval) {
  Tcb* me = current_;
  me->retval = retval;
  run_tls_dtors(me);
  if (trace_ != nullptr) trace_->record(TraceEvent::Finish, me->id);
  me->state = ThreadState::Finished;
  --active_;
  if (me->joiner != nullptr) {
    ready(me->joiner);
    me->joiner = nullptr;
  }
  if (me->detached) {
    pending_reap_ = me;  // scheduler frees the stack after switching away
  } else {
    zombies_.push_back(me);
  }
  ctx_swap_final(me->ctx, sched_ctx_, backend_);
}

void Scheduler::reap(Tcb* t) {
  stacks_.release(t->stack);
  delete t;
}

void* Scheduler::join(Tcb* t) {
  void* ret = nullptr;
  (void)join_until(t, kNoDeadline, &ret);  // cannot time out
  return ret;
}

bool Scheduler::join_until(Tcb* t, std::uint64_t deadline_ns, void** retval) {
  Tcb* me = current_;
  check_cancel();
  if (t == me || t->detached || t->join_taken) {
    std::fprintf(stderr, "lwt: invalid join (self/detached/double)\n");
    std::abort();
  }
  if (t->state != ThreadState::Finished) {
    if (deadline_ns != kNoDeadline && now() >= deadline_ns) return false;
    t->join_taken = true;
    t->joiner = me;
    TimerWheel::TimerId tid = 0;
    if (deadline_ns != kNoDeadline) tid = arm_timer(deadline_ns, me);
    me->state = ThreadState::Blocked;
    ++blocked_;
    ctx_swap(me->ctx, sched_ctx_, backend_);
    if (tid != 0) disarm_timer(tid);
    const bool timed_out = me->timed_out;
    me->timed_out = false;
    if (t->state != ThreadState::Finished) {
      // Woken without the target finishing: timeout or cancellation.
      // Give up the claim so the target stays joinable.
      t->joiner = nullptr;
      t->join_taken = false;
      if (timed_out) return false;
      check_cancel();
      std::fprintf(stderr, "lwt: join woke without target finishing\n");
      std::abort();
    }
  } else {
    t->join_taken = true;
  }
  if (retval != nullptr) *retval = t->canceled ? kCanceled : t->retval;
  for (auto it = zombies_.begin(); it != zombies_.end(); ++it) {
    if (*it == t) {
      zombies_.erase(it);
      break;
    }
  }
  reap(t);
  return true;
}

void Scheduler::detach(Tcb* t) {
  if (t->join_taken) return;
  if (t->state == ThreadState::Finished) {
    for (auto it = zombies_.begin(); it != zombies_.end(); ++it) {
      if (*it == t) {
        zombies_.erase(it);
        break;
      }
    }
    reap(t);
    return;
  }
  t->detached = true;
}

void Scheduler::cancel(Tcb* t) {
  t->cancel_requested = true;
  if (t->cancel_disabled) return;
  switch (t->state) {
    case ThreadState::Blocked:
      // Parked on a wait list, the WQ, or in join: eject and make ready;
      // the wait code re-checks cancellation on resume.
      if (t->waiting_on != nullptr) {
        t->waiting_on->remove(t);
        t->waiting_on = nullptr;
        --blocked_;
        enqueue_ready(t);
      } else {
        for (std::size_t i = 0; i < wq_.size(); ++i) {
          if (wq_[i].tcb == t) {
            wq_[i] = wq_.back();
            wq_.pop_back();
            --blocked_;
            enqueue_ready(t);
            return;
          }
        }
        for (std::size_t i = 0; i < generic_wq_.size(); ++i) {
          if (generic_wq_[i].tcb == t) {
            generic_wq_[i] = generic_wq_.back();
            generic_wq_.pop_back();
            --blocked_;
            enqueue_ready(t);
            return;
          }
        }
        // Blocked in join: wake it; join() notices and re-checks.
        --blocked_;
        enqueue_ready(t);
      }
      break;
    case ThreadState::Ready:
      // If PS-parked, pick_next() notices cancel_requested and wakes it.
      break;
    case ThreadState::Running:
    case ThreadState::Finished:
      break;
  }
}

bool Scheduler::set_cancel_enabled(bool enabled) {
  Tcb* me = current_;
  bool prev = !me->cancel_disabled;
  me->cancel_disabled = !enabled;
  return prev;
}

void Scheduler::check_cancel() {
  Tcb* me = current_;
  if (me != nullptr && me->cancel_requested && !me->cancel_disabled) {
    me->cancel_requested = false;  // acting on it now
    throw CancelInterrupt{};
  }
}

void Scheduler::set_priority(Tcb* t, int priority) {
  if (priority < 0) priority = 0;
  if (priority >= kNumPriorities) priority = kNumPriorities - 1;
  if (t->state == ThreadState::Ready && t->waiting_on == nullptr) {
    // Move between run queues so the change takes effect immediately.
    if (run_q_[t->priority].remove(t)) {
      t->priority = priority;
      run_q_[t->priority].push_back(t);
      return;
    }
  }
  t->priority = priority;
}

// ------------------------------------------------- polling-policy waits

bool Scheduler::poll_block_tp(const PollRequest& req,
                              std::uint64_t deadline_ns) {
  Tcb* me = current_;
  me->msg_waiting = true;
  ++msg_waiting_;
  // Paper Fig. 5: re-test on every resumption; yield (a full context
  // switch through the scheduler) after every failed test. After a burst
  // of consecutive failures nothing local is making progress — the data
  // must come from another simulated processor, so donate the OS
  // timeslice (essential when processors share cores; the event counters
  // the experiments report are unaffected).
  unsigned fails = 0;
  bool completed = true;
  while (!req.test(req.ctx)) {
    if (deadline_ns != kNoDeadline && now() >= deadline_ns) {
      completed = false;
      break;
    }
    ++fails;
    try {
      yield();
    } catch (...) {
      me->msg_waiting = false;
      --msg_waiting_;
      throw;
    }
    if (fails >= 4) {
      if (idle_hook_ != nullptr) {
        idle_hook_(idle_ctx_);
      } else {
        std::this_thread::yield();
      }
    }
  }
  me->msg_waiting = false;
  --msg_waiting_;
  return completed;
}

bool Scheduler::poll_block_wq(const PollRequest& req,
                              std::uint64_t deadline_ns) {
  Tcb* me = current_;
  check_cancel();
  if (req.test(req.ctx)) return true;  // fast path: already complete
  if (deadline_ns != kNoDeadline && now() >= deadline_ns) return false;
  me->msg_waiting = true;
  ++msg_waiting_;
  TimerWheel::TimerId tid = 0;
  if (deadline_ns != kNoDeadline) tid = arm_timer(deadline_ns, me);
  wq_.push_back(WqEntry{req, me});
  me->state = ThreadState::Blocked;
  me->waiting_on = nullptr;  // parked on wq_, not a TcbQueue
  ++blocked_;
  ctx_swap(me->ctx, sched_ctx_, backend_);
  me->msg_waiting = false;
  --msg_waiting_;
  if (tid != 0) disarm_timer(tid);
  const bool timed_out = me->timed_out;
  me->timed_out = false;
  check_cancel();  // cancel() may have ejected us before completion
  // Completion wins a race with the timer: re-test once before failing.
  return !timed_out || req.test(req.ctx);
}

bool Scheduler::poll_block_generic(const PollRequest& req,
                                   std::uint64_t deadline_ns) {
  Tcb* me = current_;
  check_cancel();
  if (req.test(req.ctx)) return true;  // fast path
  if (deadline_ns != kNoDeadline && now() >= deadline_ns) return false;
  TimerWheel::TimerId tid = 0;
  if (deadline_ns != kNoDeadline) tid = arm_timer(deadline_ns, me);
  generic_wq_.push_back(WqEntry{req, me});
  me->state = ThreadState::Blocked;
  me->waiting_on = nullptr;
  ++blocked_;
  ctx_swap(me->ctx, sched_ctx_, backend_);
  if (tid != 0) disarm_timer(tid);
  const bool timed_out = me->timed_out;
  me->timed_out = false;
  check_cancel();  // cancel() may have ejected us before completion
  return !timed_out || req.test(req.ctx);
}

bool Scheduler::poll_block_ps(const PollRequest& req,
                              std::uint64_t deadline_ns) {
  Tcb* me = current_;
  check_cancel();
  if (req.test(req.ctx)) return true;
  if (deadline_ns != kNoDeadline && now() >= deadline_ns) return false;
  me->msg_waiting = true;
  ++msg_waiting_;
  TimerWheel::TimerId tid = 0;
  if (deadline_ns != kNoDeadline) tid = arm_timer(deadline_ns, me);
  me->poll = req;
  me->poll_active = true;
  ++ps_parked_;
  enqueue_ready(me);  // stays queued; scheduler tests before restoring
  ctx_swap(me->ctx, sched_ctx_, backend_);
  me->msg_waiting = false;
  --msg_waiting_;
  if (tid != 0) disarm_timer(tid);
  const bool timed_out = me->timed_out;
  me->timed_out = false;
  check_cancel();
  return !timed_out || req.test(req.ctx);
}

void Scheduler::set_wq_group_poll(WqGroupPoll hook, void* hook_ctx) {
  wq_group_poll_ = hook;
  wq_group_ctx_ = hook_ctx;
}

void Scheduler::set_idle_hook(void (*hook)(void*), void* ctx) {
  idle_hook_ = hook;
  idle_ctx_ = ctx;
}

// -------------------------------------------------------- thread-local data

int Scheduler::key_create(void (*dtor)(void*)) {
  for (std::size_t k = 0; k < kMaxTlsKeys; ++k) {
    if (!tls_keys_[k].used) {
      tls_keys_[k].used = true;
      tls_keys_[k].dtor = dtor;
      return static_cast<int>(k);
    }
  }
  return -1;
}

void Scheduler::key_delete(int key) {
  if (key < 0 || key >= static_cast<int>(kMaxTlsKeys)) return;
  tls_keys_[static_cast<std::size_t>(key)] = TlsKey{};
}

void Scheduler::set_specific(int key, void* value) {
  if (key < 0 || key >= static_cast<int>(kMaxTlsKeys)) return;
  current_->tls[static_cast<std::size_t>(key)] = value;
}

void* Scheduler::get_specific(int key) const {
  if (key < 0 || key >= static_cast<int>(kMaxTlsKeys)) return nullptr;
  return current_->tls[static_cast<std::size_t>(key)];
}

void Scheduler::run_tls_dtors(Tcb* t) {
  // As in pthreads: iterate until a pass makes no progress, bounded.
  for (int pass = 0; pass < 4; ++pass) {
    bool again = false;
    for (std::size_t k = 0; k < kMaxTlsKeys; ++k) {
      void* v = t->tls[k];
      if (v != nullptr && tls_keys_[k].used && tls_keys_[k].dtor != nullptr) {
        t->tls[k] = nullptr;
        tls_keys_[k].dtor(v);
        again = true;
      }
    }
    if (!again) break;
  }
}

std::string Scheduler::debug_dump() const {
  std::ostringstream os;
  os << "scheduler: active=" << active_ << " blocked=" << blocked_
     << " ps_parked=" << ps_parked_ << " wq=" << wq_.size() << "\n";
  for (int p = kNumPriorities - 1; p >= 0; --p) {
    for (Tcb* t = run_q_[p].front(); t != nullptr; t = t->qnext) {
      os << "  prio " << p << " tcb #" << t->id << " '" << t->name << "' "
         << state_name(t->state) << (t->poll_active ? " [poll]" : "") << "\n";
    }
  }
  for (const auto& e : wq_) {
    os << "  wq tcb #" << e.tcb->id << " '" << e.tcb->name << "'\n";
  }
  return os.str();
}

// ------------------------------------------------------------- fiber boot

namespace detail {

[[noreturn]] void fiber_boot(Tcb* tcb) {
  Scheduler* sched = tcb->sched;
  ctx_note_fiber_entry(sched->backend());
  void* ret = nullptr;
  bool canceled = false;
  try {
    ret = tcb->entry(tcb->arg);
  } catch (const CancelInterrupt&) {
    canceled = true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lwt: uncaught exception in fiber #%u '%s': %s\n",
                 tcb->id, tcb->name, e.what());
    std::terminate();
  } catch (...) {
    std::fprintf(stderr, "lwt: uncaught exception in fiber #%u '%s'\n",
                 tcb->id, tcb->name);
    std::terminate();
  }
  tcb->canceled = canceled;
  sched->finish_current(canceled ? kCanceled : ret);
}

}  // namespace detail

}  // namespace lwt
