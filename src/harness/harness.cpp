// harness.cpp — anchor translation unit for the (header-only) harness
// library, so it exists as a normal CMake target other targets link.
#include "harness/costmodel.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "harness/workload.hpp"

namespace harness {
// Intentionally empty: all harness functionality is inline.
}
