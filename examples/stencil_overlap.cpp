// stencil_overlap.cpp — latency tolerance by multithreading (paper §1).
//
// A 1-D Jacobi strip is block-partitioned across the PEs; every sweep
// exchanges halo cells with the neighbouring blocks, so each sweep pays
// a cross-PE round trip. That latency is inherent to one strip (sweep
// s+1 needs sweep-s halos), but a PE running *several independent
// strips* — one talking thread per block — fills the halo waits of one
// strip with interior computation of the others. The example relaxes 1
// and then 4 strips over a 500 µs link and reports wall time and cell
// throughput: with threads the PE does ~4x the science in roughly the
// same wall time, which is precisely the latency-tolerance argument the
// paper opens with. Run:  ./stencil_overlap [cells_per_block] [sweeps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "chant/chant.hpp"
#include "harness/timer.hpp"

namespace {

constexpr int kTagHaloLeft = 20;   // payload travelling leftwards
constexpr int kTagHaloRight = 21;  // payload travelling rightwards
constexpr int kTagWire = 22;       // bootstrap: block wiring
constexpr int kTagDone = 23;       // checksum back to the driver
constexpr int kPes = 4;

struct BlockArg {
  chant::Gid reporter;
  chant::Gid left;   // neighbour block in the same strip (or pe = -1)
  chant::Gid right;
  int cells;
  int sweeps;
  int seed_base;  // global cell offset for deterministic seeding
};

// One relaxation block, owned by one talking thread; neighbours are
// addressed by global thread id, wherever they live.
void block_entry(chant::Runtime& rt, const void*, std::size_t) {
  BlockArg a{};
  rt.recv(kTagWire, &a, sizeof a, chant::kAnyThread);
  std::vector<double> cur(static_cast<std::size_t>(a.cells) + 2, 0.0);
  std::vector<double> nxt(cur.size(), 0.0);
  for (int i = 1; i <= a.cells; ++i) {
    cur[static_cast<std::size_t>(i)] = std::sin(0.001 * (a.seed_base + i));
  }
  const bool has_left = a.left.pe >= 0;
  const bool has_right = a.right.pe >= 0;
  for (int s = 0; s < a.sweeps; ++s) {
    if (has_left) rt.send(kTagHaloLeft, &cur[1], sizeof(double), a.left);
    if (has_right) {
      rt.send(kTagHaloRight, &cur[static_cast<std::size_t>(a.cells)],
              sizeof(double), a.right);
    }
    if (has_left) rt.recv(kTagHaloRight, &cur[0], sizeof(double), a.left);
    if (has_right) {
      rt.recv(kTagHaloLeft, &cur[static_cast<std::size_t>(a.cells) + 1],
              sizeof(double), a.right);
    }
    for (int i = 1; i <= a.cells; ++i) {
      const auto u = static_cast<std::size_t>(i);
      nxt[u] = 0.5 * cur[u] + 0.25 * (cur[u - 1] + cur[u + 1]);
    }
    cur.swap(nxt);
  }
  double checksum = 0.0;
  for (int i = 1; i <= a.cells; ++i) {
    checksum += cur[static_cast<std::size_t>(i)];
  }
  rt.send(kTagDone, &checksum, sizeof checksum, a.reporter);
}

struct RunResult {
  double ms;
  double strip_checksum;  // checksum of strip 0 (identical across runs)
};

RunResult run_config(chant::Runtime& rt, int strips, int cells_per_block,
                     int sweeps) {
  harness::Timer timer;
  // Create one block thread per (strip, pe), then wire each strip into a
  // chain across the PEs with a bootstrap message.
  std::vector<chant::Gid> gids;
  for (int s = 0; s < strips; ++s) {
    for (int p = 0; p < kPes; ++p) {
      gids.push_back(rt.create_marshalled(&block_entry, nullptr, 0, p, 0));
    }
  }
  auto gid_at = [&](int s, int p) -> chant::Gid& {
    return gids[static_cast<std::size_t>(s * kPes + p)];
  };
  for (int s = 0; s < strips; ++s) {
    for (int p = 0; p < kPes; ++p) {
      BlockArg a{};
      a.reporter = rt.self();
      a.left = p > 0 ? gid_at(s, p - 1) : chant::Gid{-1, -1, -1};
      a.right = p + 1 < kPes ? gid_at(s, p + 1) : chant::Gid{-1, -1, -1};
      a.cells = cells_per_block;
      a.sweeps = sweeps;
      a.seed_base = p * cells_per_block;  // same field in every strip
      rt.send(kTagWire, &a, sizeof a, gid_at(s, p));
    }
  }
  double checksum0 = 0.0;
  for (int n = 0; n < strips * kPes; ++n) {
    double part = 0.0;
    chant::MsgInfo mi = rt.recv(kTagDone, &part, sizeof part,
                                chant::kAnyThread);
    (void)mi;
    checksum0 += part;
  }
  for (auto& g : gids) rt.join(g);
  // All strips relax the same field, so checksum0 == strips * strip sum.
  return RunResult{timer.elapsed_ms(), checksum0 / strips};
}

}  // namespace

int main(int argc, char** argv) {
  const int cells = argc > 1 ? std::atoi(argv[1]) : 8192;
  const int sweeps = argc > 2 ? std::atoi(argv[2]) : 30;

  chant::World::Config cfg;
  cfg.pes = kPes;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  cfg.net = nx::NetModel{500.0, 0.01};  // halo exchange costs real time

  chant::World world(cfg);
  world.run([&](chant::Runtime& rt) {
    if (rt.pe() != 0) return;
    const RunResult one = run_config(rt, 1, cells, sweeps);
    const RunResult four = run_config(rt, 4, cells, sweeps);
    const double updates1 = 1.0 * kPes * cells * sweeps;
    const double updates4 = 4.0 * kPes * cells * sweeps;
    std::printf("stencil_overlap: %d cells/block, %d sweeps, %d pes, "
                "500us link\n", cells, sweeps, kPes);
    std::printf("  1 strip /pe: %8.1f ms  %8.2f Mupdates/s (checksum %.6f)\n",
                one.ms, updates1 / one.ms / 1e3, one.strip_checksum);
    std::printf("  4 strips/pe: %8.1f ms  %8.2f Mupdates/s (checksum %.6f)\n",
                four.ms, updates4 / four.ms / 1e3, four.strip_checksum);
    std::printf("  throughput gain from overlap: %.2fx (checksums %s)\n",
                (updates4 / four.ms) / (updates1 / one.ms),
                std::fabs(one.strip_checksum - four.strip_checksum) < 1e-9
                    ? "match"
                    : "MISMATCH");
  });
  std::puts("stencil_overlap: done");
  return 0;
}
