// pingpong.cpp — latency/bandwidth demo using the paper's Appendix-A
// C interface (pthread_chanter_*), the style a 1994 NX programmer would
// have written.
//
// Two threads, one per PE, bounce messages of growing size and report
// the per-message round-trip time — a miniature of the paper's Table 2
// workload. Run:  ./pingpong [iterations]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "chant/chant.hpp"
#include "harness/timer.hpp"

namespace {

constexpr int kTagBall = 3;
int g_iterations = 200;

void* ponger(void*) {
  pthread_chanter_t peer = PTHREAD_CHANTER_ANY;
  std::vector<char> buf(64 * 1024);
  for (std::size_t size = 1024; size <= 16 * 1024; size *= 2) {
    for (int i = 0; i < g_iterations; ++i) {
      pthread_chanter_t from = PTHREAD_CHANTER_ANY;
      pthread_chanter_recv(kTagBall, buf.data(), static_cast<int>(size),
                           &from);
      peer = from;
      pthread_chanter_send(kTagBall, buf.data(), static_cast<int>(size),
                           &peer);
    }
  }
  return nullptr;
}

void* pinger(void* arg) {
  const pthread_chanter_t* peer = static_cast<const pthread_chanter_t*>(arg);
  std::vector<char> buf(64 * 1024, 'p');
  std::printf("%-12s %-14s %-14s\n", "size (B)", "round trip us", "MB/s");
  for (std::size_t size = 1024; size <= 16 * 1024; size *= 2) {
    harness::Timer t;
    for (int i = 0; i < g_iterations; ++i) {
      pthread_chanter_send(kTagBall, buf.data(), static_cast<int>(size),
                           peer);
      pthread_chanter_t from = *peer;
      pthread_chanter_recv(kTagBall, buf.data(), static_cast<int>(size),
                           &from);
    }
    const double us = t.elapsed_us() / g_iterations;
    std::printf("%-12zu %-14.2f %-14.1f\n", size, us,
                2.0 * static_cast<double>(size) / us);  // both directions
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) g_iterations = std::atoi(argv[1]);
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = chant::PollPolicy::ThreadPolls;

  chant::World world(cfg);
  world.run([](chant::Runtime& rt) {
    if (rt.pe() != 0) return;
    // Create the remote ponger via the C API, then ping it.
    pthread_chanter_t remote;
    if (pthread_chanter_create(&remote, nullptr, &ponger, nullptr, 1, 0) !=
        0) {
      std::fprintf(stderr, "pingpong: remote create failed\n");
      return;
    }
    pinger(&remote);
    pthread_chanter_join(&remote, nullptr);
  });
  std::puts("pingpong: done");
  return 0;
}
