// opus_sda.cpp — shared data abstractions: the workload Chant was built
// to carry (paper §1: "support our extensions to the High Performance
// Fortran standard for task parallelism and shared data abstractions").
//
// A bounded ticket queue lives as an SDA on pe 0. Producer threads on
// every other PE push work tickets through monitor methods; consumer
// threads everywhere pop them. All mutual exclusion happens inside the
// owner's address space — callers just invoke methods on a global
// reference. Run:  ./opus_sda [tickets]
#include <cstdio>
#include <cstdlib>

#include "chant/chant.hpp"

namespace {

constexpr int kPes = 4;
constexpr int kQueueCap = 8;

struct TicketQueue {
  long items[kQueueCap] = {};
  int head = 0;
  int count = 0;
  long pushed = 0;
  long popped = 0;
};

struct PushOut {
  int accepted;  // 0 = queue full, try again
};
struct PopOut {
  int ok;  // 0 = queue empty
  long item;
};

void push_method(chant::Runtime&, TicketQueue& q, const long& item,
                 PushOut& out) {
  if (q.count == kQueueCap) {
    out.accepted = 0;
    return;
  }
  q.items[(q.head + q.count) % kQueueCap] = item;
  ++q.count;
  ++q.pushed;
  out.accepted = 1;
}

void pop_method(chant::Runtime&, TicketQueue& q, const long&, PopOut& out) {
  if (q.count == 0) {
    out.ok = 0;
    out.item = 0;
    return;
  }
  out.ok = 1;
  out.item = q.items[q.head];
  q.head = (q.head + 1) % kQueueCap;
  --q.count;
  ++q.popped;
}

void totals_method(chant::Runtime&, TicketQueue& q, const long&, long& out) {
  out = q.pushed * 1000000 + q.popped;
}

}  // namespace

int main(int argc, char** argv) {
  const long tickets = argc > 1 ? std::atol(argv[1]) : 64;

  chant::World::Config cfg;
  cfg.pes = kPes;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  chant::World world(cfg);

  chant::SdaClass<TicketQueue> queue_class(world);
  const int push = queue_class.method<long, PushOut>(&push_method);
  const int pop = queue_class.method<long, PopOut>(&pop_method);
  const int totals = queue_class.method<long, long>(&totals_method);

  world.run([&](chant::Runtime& rt) {
    // pe 0 owns the queue and distributes the reference.
    chant::SdaRef ref;
    if (rt.pe() == 0) {
      ref = queue_class.create(rt, 0, 0);
      for (int pe = 1; pe < kPes; ++pe) {
        rt.send(1, &ref, sizeof ref, chant::Gid{pe, 0, chant::kMainLid});
      }
    } else {
      rt.recv(1, &ref, sizeof ref, chant::Gid{0, 0, chant::kMainLid});
    }

    // Producers on pes 1..3 push their share of tickets (retrying while
    // the bounded queue is full); consumers on every pe pop them.
    const long per_producer = tickets / (kPes - 1);
    long consumed = 0;
    long consumed_sum = 0;
    if (rt.pe() != 0) {
      for (long i = 0; i < per_producer; ++i) {
        const long ticket = rt.pe() * 1000 + i;
        for (;;) {
          PushOut out{};
          queue_class.invoke(rt, ref, push, ticket, out);
          if (out.accepted != 0) break;
          rt.yield();  // queue full: give consumers a chance
        }
      }
    }
    // pe 0 consumes everything the producers pushed.
    if (rt.pe() == 0) {
      long done = 0;
      while (done < (kPes - 1) * per_producer) {
        PopOut out{};
        queue_class.invoke(rt, ref, pop, 0L, out);
        if (out.ok != 0) {
          ++consumed;
          consumed_sum += out.item;
          ++done;
        } else {
          rt.yield();
        }
      }
      long t = 0;
      queue_class.invoke(rt, ref, totals, 0L, t);
      std::printf("opus_sda: queue saw %ld pushes / %ld pops; pe 0 consumed "
                  "%ld tickets (sum %ld)\n",
                  t / 1000000, t % 1000000, consumed, consumed_sum);
      // Tell everyone we're done before tearing the object down.
      for (int pe = 1; pe < kPes; ++pe) {
        char fin = 1;
        rt.send(2, &fin, 1, chant::Gid{pe, 0, chant::kMainLid});
      }
      queue_class.destroy(rt, ref);
    } else {
      char fin = 0;
      rt.recv(2, &fin, 1, chant::Gid{0, 0, chant::kMainLid});
    }
  });
  std::puts("opus_sda: done");
  return 0;
}
