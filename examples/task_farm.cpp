// task_farm.cpp — dynamic load balancing with talking threads.
//
// The paper's introduction motivates talking threads with dynamic
// scheduling and load balancing. This example is that workload: pe 0
// runs a farmer thread holding a bag of unevenly sized tasks; it creates
// worker threads on every PE (remote creation through the server
// thread), and each worker pulls tasks by message — send request, recv
// task, compute, repeat — until the farmer hands out poison pills.
// Imbalance is absorbed automatically: fast workers simply ask more
// often. Run:  ./task_farm [pes] [workers_per_pe] [tasks]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "chant/chant.hpp"
#include "harness/timer.hpp"
#include "harness/workload.hpp"

namespace {

constexpr int kTagWantWork = 10;
constexpr int kTagTask = 11;
constexpr int kTagResult = 12;

struct Task {
  long id;          // -1 = poison pill
  std::uint64_t work;  // compute iterations
};

struct WorkerArg {
  chant::Gid farmer;
};

void worker_entry(chant::Runtime& rt, const void* arg, std::size_t len) {
  WorkerArg wa{};
  if (len >= sizeof wa) std::memcpy(&wa, arg, sizeof wa);
  const chant::Gid me = rt.self();
  long done = 0;
  std::uint64_t acc = 0;
  for (;;) {
    rt.send(kTagWantWork, &me, sizeof me, wa.farmer);
    Task t{};
    rt.recv(kTagTask, &t, sizeof t, wa.farmer);
    if (t.id < 0) break;
    acc ^= harness::compute(t.work);
    ++done;
  }
  harness::consume(acc);
  // Report how many tasks this worker absorbed.
  long report[2] = {static_cast<long>(rt.pe()), done};
  rt.send(kTagResult, report, sizeof report, wa.farmer);
}

}  // namespace

int main(int argc, char** argv) {
  const int pes = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_pe = argc > 2 ? std::atoi(argv[2]) : 2;
  const long ntasks = argc > 3 ? std::atol(argv[3]) : 200;

  chant::World::Config cfg;
  cfg.pes = pes;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  // A visible wire latency makes the balancing interesting: remote
  // workers pay for each request, yet absorption stays even because
  // pulling work self-schedules around the skewed task sizes.
  cfg.net = nx::NetModel{30.0, 0.01};
  chant::World world(cfg);

  world.run([&](chant::Runtime& rt) {
    if (rt.pe() != 0) return;
    harness::Timer timer;
    const chant::Gid farmer = rt.self();
    const int nworkers = pes * per_pe;

    // Spawn workers everywhere (marshalled arg: the farmer's gid).
    std::vector<chant::Gid> workers;
    for (int pe = 0; pe < pes; ++pe) {
      for (int k = 0; k < per_pe; ++k) {
        WorkerArg wa{farmer};
        workers.push_back(
            rt.create_marshalled(&worker_entry, &wa, sizeof wa, pe, 0));
      }
    }

    // Farm: answer each "want work" with the next task; task sizes are
    // deliberately skewed (task i costs (i % 17)^2 * 300 units).
    long next = 0;
    int finished = 0;
    while (finished < nworkers) {
      chant::Gid hungry{};
      rt.recv(kTagWantWork, &hungry, sizeof hungry, chant::kAnyThread);
      Task t{};
      if (next < ntasks) {
        // Deliberately skewed task sizes (up to ~2.5 ms of compute), big
        // enough that absorption tracks capacity rather than proximity.
        const long s = next % 17;
        t = Task{next, static_cast<std::uint64_t>(s * s * 3000 + 1000)};
        ++next;
      } else {
        t = Task{-1, 0};
        ++finished;
      }
      rt.send(kTagTask, &t, sizeof t, hungry);
    }

    // Collect per-worker absorption counts.
    std::vector<long> per_pe_tasks(static_cast<std::size_t>(pes), 0);
    for (int i = 0; i < nworkers; ++i) {
      long report[2];
      rt.recv(kTagResult, report, sizeof report, chant::kAnyThread);
      per_pe_tasks[static_cast<std::size_t>(report[0])] += report[1];
    }
    for (auto& g : workers) rt.join(g);

    std::printf("task_farm: %ld tasks over %d workers on %d pes in %.1f ms\n",
                ntasks, nworkers, pes, timer.elapsed_ms());
    for (int pe = 0; pe < pes; ++pe) {
      std::printf("  pe %d absorbed %ld tasks\n", pe,
                  per_pe_tasks[static_cast<std::size_t>(pe)]);
    }
  });
  std::puts("task_farm: done");
  return 0;
}
