// quickstart.cpp — smallest complete Chant program (C++ API).
//
// Boots a simulated 2-PE machine, creates a thread on the *remote* PE,
// exchanges point-to-point messages with it by global thread id, and
// joins it. Run:  ./quickstart
#include <cstdio>
#include <cstring>

#include "chant/chant.hpp"

namespace {

constexpr int kTagGreeting = 1;
constexpr int kTagReply = 2;

// Entry functions are plain (SPMD-valid) functions, as on the Paragon.
void* greeter(void* arg) {
  chant::Runtime& rt = *chant::Runtime::current();
  const long salt = reinterpret_cast<long>(arg);

  char buf[128];
  const chant::MsgInfo mi =
      rt.recv(kTagGreeting, buf, sizeof buf, chant::kAnyThread);
  std::printf("[pe %d] greeter got \"%s\" from thread (%d,%d,%d)\n", rt.pe(),
              buf, mi.src.pe, mi.src.process, mi.src.thread);

  char reply[128];
  std::snprintf(reply, sizeof reply, "greetings from pe %d (salt %ld)",
                rt.pe(), salt);
  rt.send(kTagReply, reply, std::strlen(reply) + 1, mi.src);
  return reinterpret_cast<void*>(salt * 2);
}

}  // namespace

int main() {
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;  // the paper's best

  chant::World world(cfg);
  world.run([](chant::Runtime& rt) {
    if (rt.pe() != 0) return;  // SPMD: only pe 0 drives the demo

    // Create a thread on pe 1 — a remote service request under the hood.
    const chant::Gid remote = rt.create(&greeter, reinterpret_cast<void*>(21L),
                                        /*pe=*/1, /*process=*/0);
    std::printf("[pe 0] created remote thread (%d,%d,%d)\n", remote.pe,
                remote.process, remote.thread);

    const char hello[] = "hello, talking threads!";
    rt.send(kTagGreeting, hello, sizeof hello, remote);

    char buf[128];
    const chant::MsgInfo mi = rt.recv(kTagReply, buf, sizeof buf, remote);
    std::printf("[pe 0] reply: \"%s\" (%zu bytes)\n", buf, mi.len);

    int err = 0;
    void* rv = rt.join(remote, &err);
    std::printf("[pe 0] joined remote thread: err=%d retval=%ld\n", err,
                reinterpret_cast<long>(rv));
  });
  std::puts("quickstart: done");
  return 0;
}
