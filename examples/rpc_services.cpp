// rpc_services.cpp — remote service requests in the paper's §3.2 style.
//
// Each PE owns a shard of a distributed table. Two services are
// registered on every process (SPMD):
//   * remote fetch  — read a value out of another PE's address space,
//   * remote update — a one-way "post" that mutates remote state.
// pe 0 then fetches from every shard and fires updates at them,
// demonstrating request/reply matching and one-way RSRs, all through the
// per-process server thread. Run:  ./rpc_services
#include <cstdio>
#include <cstring>
#include <vector>

#include "chant/chant.hpp"

namespace {

constexpr int kShardSize = 64;

// Per-process shard. Each simulated process has its own OS thread and
// touches only its own slot — cross-PE access *must* use the services.
thread_local std::vector<long> t_shard;

struct FetchReq {
  int index;
};
struct FetchRep {
  long value;
};
struct UpdateReq {
  int index;
  long delta;
};

void fetch_handler(chant::Runtime& rt, chant::Runtime::RsrContext&,
                   const void* arg, std::size_t len,
                   std::vector<std::uint8_t>& reply) {
  FetchReq req{};
  if (len >= sizeof req) std::memcpy(&req, arg, sizeof req);
  FetchRep rep{t_shard[static_cast<std::size_t>(req.index) % kShardSize]};
  reply.resize(sizeof rep);
  std::memcpy(reply.data(), &rep, sizeof rep);
  (void)rt;
}

void update_handler(chant::Runtime& rt, chant::Runtime::RsrContext&,
                    const void* arg, std::size_t len,
                    std::vector<std::uint8_t>&) {
  UpdateReq req{};
  if (len >= sizeof req) std::memcpy(&req, arg, sizeof req);
  t_shard[static_cast<std::size_t>(req.index) % kShardSize] += req.delta;
  (void)rt;
}

}  // namespace

int main() {
  chant::World::Config cfg;
  cfg.pes = 4;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  chant::World world(cfg);

  const int fetch_id = world.register_handler(&fetch_handler);
  const int update_id = world.register_handler(&update_handler);

  world.run([&](chant::Runtime& rt) {
    // Every process initializes its shard: shard[i] = pe*1000 + i.
    t_shard.assign(kShardSize, 0);
    for (int i = 0; i < kShardSize; ++i) t_shard[i] = rt.pe() * 1000 + i;

    if (rt.pe() != 0) return;

    // Remote fetch from every PE.
    for (int pe = 0; pe < 4; ++pe) {
      FetchReq req{7};
      const auto rep = rt.call(pe, 0, fetch_id, &req, sizeof req);
      FetchRep out{};
      std::memcpy(&out, rep.data(), sizeof out);
      std::printf("[pe 0] fetch pe%d[7] = %ld\n", pe, out.value);
    }

    // One-way updates, then re-fetch to observe them.
    for (int pe = 1; pe < 4; ++pe) {
      UpdateReq up{7, 100000};
      rt.post(pe, 0, update_id, &up, sizeof up);
    }
    for (int pe = 1; pe < 4; ++pe) {
      FetchReq req{7};
      const auto rep = rt.call(pe, 0, fetch_id, &req, sizeof req);
      FetchRep out{};
      std::memcpy(&out, rep.data(), sizeof out);
      std::printf("[pe 0] after update pe%d[7] = %ld\n", pe, out.value);
    }
  });
  std::puts("rpc_services: done");
  return 0;
}
